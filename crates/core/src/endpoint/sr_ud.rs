//! RDMA Send/Receive over the Unreliable Datagram service (§4.4.2).
//!
//! One UD Queue Pair can talk to *every* other Queue Pair, so an endpoint
//! needs Θ(1) connections instead of Θ(n) — the decisive scalability
//! property of the paper's winning MESQ/SR design. The price is software
//! error handling:
//!
//! * **Flow control** uses the same stateless absolute-credit protocol as
//!   the RC endpoint (§4.4.1), but credit updates travel as small datagrams
//!   on the shared Queue Pair (there is no reliable connection to
//!   RDMA-Write through). A lost credit update self-heals because credit is
//!   absolute: the next update supersedes it.
//! * **Termination** cannot rely on ordering: a `Depleted` message may
//!   arrive *before* stragglers it logically follows. The sender therefore
//!   counts the data messages it sent to each destination and transmits the
//!   total in the `Depleted` message; the receiver compares it against its
//!   own count and keeps waiting for outstanding packets. If the counts
//!   still disagree after a timeout, the transmission is declared failed
//!   and the query must restart ([`ShuffleError::NetworkErrorRestartQuery`]).
//!   This exploits the set-orientation of relational operators: buffers can
//!   be consumed in any arrival order, so counting replaces a re-order
//!   buffer.
//!
//! The send and receive halves of a node's endpoint share one Queue Pair
//! (a [`SrUdChannel`]), keeping the QP count at one per endpoint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_audit::{AuditHandle, BufId, CreditLane};
use rshuffle_simnet::{Gate, NodeId, SimContext, SimDuration, SimTime};
use rshuffle_verbs::{
    AddressHandle, Completion, CompletionQueue, Context, MemoryRegion, QueuePair, RecvWr, SendWr,
    WcStatus,
};

use crate::buffer::{Buffer, BufferPool, MsgHeader, MsgKind, StreamState, HEADER_LEN};
use crate::endpoint::{
    audit_handle, buf_id, Backoff, CqScratch, Delivery, EndpointId, ReceiveEndpoint, RecvObs,
    SendEndpoint, SendObs, CQ_BATCH,
};
use crate::error::{Result, ShuffleError};

/// Tuning knobs for the UD endpoint.
#[derive(Clone, Debug)]
pub struct SrUdConfig {
    /// Send buffers registered by the endpoint (each is one MTU).
    pub send_buffers: usize,
    /// Receive window granted to each expected source.
    pub recv_window_per_src: usize,
    /// Send a credit datagram every this many data releases (Figure 8).
    pub credit_writeback_frequency: u32,
    /// Polling granularity for flow-control waits.
    pub poll_interval: SimDuration,
    /// Give up with [`ShuffleError::Stalled`] after this long without any
    /// progress.
    pub stall_timeout: SimDuration,
    /// After a count mismatch is detected at end of stream, wait this long
    /// for outstanding packets before declaring a network error (§4.4.2).
    pub depleted_timeout: SimDuration,
    /// Use the switch's native multicast for group sends: one work request
    /// and one egress serialization reach every group member (the paper's
    /// §7 extension). Termination (`Depleted`) messages always go out
    /// per-destination because their counters differ.
    pub native_multicast: bool,
    /// Extra CPU charged per post while holding the shared-QP lock: models
    /// the QP state cache line bouncing between the cores that share the
    /// endpoint. Zero for dedicated (ME) endpoints; the exchange builder
    /// scales it with the thread count for SE (the "excessive contention"
    /// of Table 1 that bottlenecks SESQ/SR on `ibv_post_send`, §5.1.3).
    pub post_overhead: SimDuration,
    /// Flow epoch stamped on every outgoing header and required of every
    /// accepted arrival (data *and* credit). The recovery orchestrator
    /// bumps this on partial retries so leftovers of the failed attempt
    /// are fenced off; healthy runs stay at 0.
    pub epoch: u16,
}

impl Default for SrUdConfig {
    fn default() -> Self {
        SrUdConfig {
            send_buffers: 16,
            recv_window_per_src: 16,
            credit_writeback_frequency: 2,
            poll_interval: SimDuration::from_nanos(400),
            stall_timeout: SimDuration::from_millis(500),
            depleted_timeout: SimDuration::from_millis(2),
            post_overhead: SimDuration::ZERO,
            native_multicast: false,
            epoch: 0,
        }
    }
}

struct SrcCount {
    node: NodeId,
    received: u64,
    expected: Option<u64>,
}

struct UdShared {
    send_id: EndpointId,
    recv_id: EndpointId,
    qp: QueuePair,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    mtu: usize,

    /// Lane-matched peer channels: destination node → its channel's QP.
    peer_ahs: Mutex<HashMap<NodeId, AddressHandle>>,
    /// Multicast AH lists cached per destination set: built once on the
    /// first group send and reused, instead of rebuilt per send.
    mcast_ahs: Mutex<HashMap<Vec<NodeId>, Arc<Vec<AddressHandle>>>>,

    // ---- send half ----
    /// Absolute credit granted to this channel by each destination.
    credit: Mutex<HashMap<NodeId, u64>>,
    /// The bootstrap window granted per destination — the drained-state
    /// credit level [`UdShared::quiesce_dest`] waits to recover.
    initial_credit: Mutex<HashMap<NodeId, u64>>,
    /// Messages (data + credit) sent to each destination; each consumes one
    /// credit.
    consumed: Mutex<HashMap<NodeId, u64>>,
    /// Data messages sent per destination (drives termination counting).
    sent_data: Mutex<HashMap<NodeId, u64>>,
    /// Recycle pool over the registered send region: steady-state sends
    /// reuse MTU windows instead of allocating.
    pool: BufferPool,
    /// Reusable scratch for batched send-CQ drains.
    send_scratch: CqScratch,
    outstanding: Mutex<HashMap<u64, u32>>,
    /// Serializes `ibv_post_send` on the shared QP; this is the contention
    /// the paper profiles for SESQ/SR (§5.1.3).
    post_lock: rshuffle_simnet::SimMutex<()>,

    // ---- receive half ----
    /// Receive pool; allocated and posted by
    /// [`SrUdChannel::bootstrap_receives`] once the expected sources are
    /// known.
    recv_pool_dynamic: Mutex<Option<MemoryRegion>>,
    /// Deliveries demultiplexed by some other thread (e.g. the send half's
    /// credit wait) for the receive half to pick up.
    data_gate: Gate<Delivery>,
    /// Reusable scratch for batched receive-CQ drains.
    recv_scratch: CqScratch,
    /// Per-source-endpoint message accounting.
    srcs: Mutex<HashMap<u32, SrcCount>>,
    /// Source endpoints that will send to this receive half.
    expected_srcs: Mutex<HashMap<u32, NodeId>>,
    /// Credit granted (absolute) per source node, plus releases since the
    /// last write-back.
    grants: Mutex<HashMap<NodeId, (u64, u32)>>,
    bytes_received: AtomicU64,
    done: AtomicBool,
    last_progress: Mutex<SimTime>,

    send_obs: SendObs,
    recv_obs: RecvObs,
    audit: AuditHandle,
    /// This channel's node, for the receive side of audit credit lanes.
    node: u64,
    cfg: SrUdConfig,
    setup_cost_send: SimDuration,
    setup_cost_recv: SimDuration,
}

/// A UD endpoint pair: the send and receive halves share one Queue Pair.
pub struct SrUdChannel {
    shared: Arc<UdShared>,
}

/// The send half of a [`SrUdChannel`].
#[derive(Clone)]
pub struct SrUdSendEndpoint {
    shared: Arc<UdShared>,
}

/// The receive half of a [`SrUdChannel`].
#[derive(Clone)]
pub struct SrUdReceiveEndpoint {
    shared: Arc<UdShared>,
}

impl SrUdChannel {
    /// Creates a channel on `ctx`'s node with the given endpoint ids for
    /// its two halves.
    pub fn new(ctx: &Context, send_id: EndpointId, recv_id: EndpointId, cfg: SrUdConfig) -> Self {
        let send_cq = ctx.create_cq();
        let recv_cq = ctx.create_cq();
        let qp = ctx.create_qp(rshuffle_verbs::QpType::Ud, send_cq.clone(), recv_cq.clone());
        let profile = ctx.profile();
        let mtu = profile.mtu;
        let send_pool = ctx.register_untimed(mtu * cfg.send_buffers);
        let pool = BufferPool::carve(send_pool, 0, mtu, cfg.send_buffers);
        let setup_cost_send = profile.endpoint_setup
            + profile.ud_qp_setup
            + profile.mr_register_time(mtu * cfg.send_buffers);
        let setup_cost_recv = profile.endpoint_setup;
        SrUdChannel {
            shared: Arc::new(UdShared {
                send_id,
                recv_id,
                qp,
                send_cq,
                recv_cq,
                mtu,
                peer_ahs: Mutex::new(HashMap::new()),
                mcast_ahs: Mutex::new(HashMap::new()),
                credit: Mutex::new(HashMap::new()),
                initial_credit: Mutex::new(HashMap::new()),
                consumed: Mutex::new(HashMap::new()),
                sent_data: Mutex::new(HashMap::new()),
                pool,
                send_scratch: CqScratch::new(),
                outstanding: Mutex::new(HashMap::new()),
                post_lock: rshuffle_simnet::SimMutex::new(
                    ctx.runtime().kernel(),
                    (),
                    SimDuration::from_nanos(60),
                ),
                recv_pool_dynamic: Mutex::new(None),
                data_gate: Gate::new(ctx.runtime().kernel(), SimDuration::from_nanos(100)),
                recv_scratch: CqScratch::new(),
                srcs: Mutex::new(HashMap::new()),
                expected_srcs: Mutex::new(HashMap::new()),
                grants: Mutex::new(HashMap::new()),
                bytes_received: AtomicU64::new(0),
                done: AtomicBool::new(false),
                last_progress: Mutex::new(SimTime::ZERO),
                send_obs: SendObs::new(ctx, send_id),
                recv_obs: RecvObs::new(ctx, recv_id),
                audit: audit_handle(ctx),
                node: ctx.node() as u64,
                cfg,
                setup_cost_send,
                setup_cost_recv,
            }),
        }
    }

    /// The channel's QP address, for peers' lane wiring.
    pub fn address_handle(&self) -> AddressHandle {
        self.shared.qp.address_handle()
    }

    /// The underlying QP (activated by the exchange builder).
    pub fn qp(&self) -> &QueuePair {
        &self.shared.qp
    }

    /// Registers the lane-matched peer channel for `node`.
    pub fn add_peer(&self, node: NodeId, ah: AddressHandle) {
        self.shared.peer_ahs.lock().insert(node, ah);
    }

    /// Declares the sources that will send to this channel's receive half,
    /// allocates and posts the receive windows, and returns the initial
    /// credit each source must be bootstrapped with.
    ///
    /// `ctx` must belong to the same node the channel was created on.
    pub fn bootstrap_receives(
        &self,
        ctx: &Context,
        expected: &[(EndpointId, NodeId)],
    ) -> Result<u64> {
        let s = &self.shared;
        let window = s.cfg.recv_window_per_src;
        {
            let mut map = s.expected_srcs.lock();
            for &(ep, node) in expected {
                map.insert(ep.0, node);
            }
            let mut grants = s.grants.lock();
            for &(_, node) in expected {
                grants.insert(node, (window as u64, 0));
            }
            // Credit datagrams may legally be lost on the unreliable
            // transport, so the lanes carry no write-back frequency: the
            // auditor checks monotonicity and overdraft, not gaps.
            // Bootstrap happens outside the measured window, at virtual 0.
            for &(ep, _) in expected {
                let lane = CreditLane::Ud {
                    sender: ep.0 as u64,
                    dest: s.node,
                };
                s.audit.credit_lane(lane, None);
                s.audit.credit_granted(lane, window as u64, 0);
            }
        }
        // Data windows plus generous head-room for in-flight credit
        // datagrams (see module docs): credit arrivals are paced at one per
        // `freq` releases, so 2× the window per peer bounds any burst.
        let n_srcs = expected.len().max(1);
        let headroom = 2 * window * n_srcs;
        let slots = window * n_srcs + headroom;
        let pool = ctx.register_untimed(slots * s.mtu);
        // SAFETY of replace: bootstrap runs once before any receive is
        // posted; swap the placeholder empty pool for the real one.
        // (MemoryRegion clones share backing storage, so we must store the
        // new region where the receive path can see it.)
        for i in 0..slots {
            // Widen before multiplying: `i * s.mtu` would wrap in usize
            // before the cast on a 32-bit host.
            s.qp.post_recv_untimed(RecvWr {
                wr_id: (i as u64) * (s.mtu as u64),
                mr: pool.clone(),
                offset: i * s.mtu,
                len: s.mtu,
            })?;
        }
        s.recv_pool_dynamic.lock().replace(pool);
        Ok(window as u64)
    }

    /// Seeds the send half's credit for `dest` (out-of-band bootstrap).
    pub fn bootstrap_credit(&self, dest: NodeId, credit: u64) {
        self.shared.credit.lock().insert(dest, credit);
        self.shared.initial_credit.lock().insert(dest, credit);
    }

    /// The send half.
    pub fn send_half(&self) -> SrUdSendEndpoint {
        SrUdSendEndpoint {
            shared: self.shared.clone(),
        }
    }

    /// The receive half.
    pub fn recv_half(&self) -> SrUdReceiveEndpoint {
        SrUdReceiveEndpoint {
            shared: self.shared.clone(),
        }
    }
}

impl UdShared {
    /// Consumes one credit toward `dest`, blocking while exhausted. While
    /// waiting, drains inbound completions so credit datagrams are seen even
    /// if no receive-half thread is active.
    fn consume_credit(&self, sim: &SimContext, dest: NodeId) -> Result<()> {
        let deadline = sim.now() + self.cfg.stall_timeout;
        let mut backoff = Backoff::new(self.cfg.poll_interval * 4);
        // Opened lazily on the first failed check so the common
        // credit-available path records nothing (Figure 8 stalls only).
        let mut stall_start = None;
        let result = loop {
            {
                let credit = self.credit.lock();
                let mut consumed = self.consumed.lock();
                let c = credit.get(&dest).copied().unwrap_or(0);
                let used = consumed.entry(dest).or_insert(0);
                if c > *used {
                    *used += 1;
                    self.audit.credit_consumed(
                        CreditLane::Ud {
                            sender: self.send_id.0 as u64,
                            dest: dest as u64,
                        },
                        *used,
                        sim.now().as_nanos(),
                    );
                    break Ok(());
                }
            }
            if stall_start.is_none() {
                stall_start = Some(self.send_obs.stall_begin(sim));
            }
            if sim.now() >= deadline {
                break Err(ShuffleError::Stalled("waiting for UD send credit"));
            }
            // Drain inbound traffic: the credit we need may be sitting in
            // the receive CQ.
            match self.drain_inbound(sim, backoff.next()) {
                Ok(true) => backoff.reset(),
                Ok(false) => {}
                Err(e) => break Err(e),
            }
        };
        if let Some(started) = stall_start {
            self.send_obs.stall_end(sim, started);
        }
        result
    }

    /// Waits until the data already sent toward `dest` has fully
    /// drained as far as UD flow control can observe: the receiver has
    /// released — and written credit back for — the whole window. The
    /// receiver posts a credit datagram only every
    /// `credit_writeback_frequency` releases, so waiting for the
    /// literal bootstrap window would deadlock on any message count
    /// that is not a multiple of the frequency; `freq − 1` messages may
    /// legally stay unconfirmed and are excluded from the target.
    ///
    /// Full drain is deliberate: a half-window slack was tried and
    /// reverted. Residue flows from phase p overlap phase p+1, which
    /// doubles the active flow count on the receiver's *leaf downlink*
    /// — past the downlink incast knee (`hosts_per_leaf`) — and the
    /// measured collapse penalty exceeded everything the slack saved
    /// on the credit round trip. Draining fully keeps every port at or
    /// under its knee, and the super-round barrier cadence
    /// ([`crate::phase::PHASE_GROUP`]) amortizes the per-phase credit
    /// wait instead.
    fn quiesce_dest(&self, sim: &SimContext, dest: NodeId) -> Result<()> {
        let lag = u64::from(self.cfg.credit_writeback_frequency.saturating_sub(1));
        let target = match self.initial_credit.lock().get(&dest) {
            Some(&window) => window.saturating_sub(lag),
            // Never bootstrapped toward `dest`: nothing was ever sent.
            None => return Ok(()),
        };
        let deadline = sim.now() + self.cfg.stall_timeout;
        let mut backoff = Backoff::new(self.cfg.poll_interval * 4);
        loop {
            let available = {
                let credit = self.credit.lock();
                let consumed = self.consumed.lock();
                let c = credit.get(&dest).copied().unwrap_or(0);
                let m = consumed.get(&dest).copied().unwrap_or(0);
                c.saturating_sub(m)
            };
            if available >= target {
                return Ok(());
            }
            if sim.now() >= deadline {
                return Err(ShuffleError::Stalled("waiting for a UD phase to drain"));
            }
            // The credit write-backs we are waiting for arrive on the
            // receive CQ; completed sends free pool slots as a bonus.
            if self.drain_inbound(sim, backoff.next())? {
                backoff.reset();
            }
        }
    }

    /// Drains a batch of inbound completions (credit updates handled
    /// internally, data pushed to the data gate), paying one poll cost
    /// for the whole drain. Returns whether progress was made.
    fn drain_inbound(&self, sim: &SimContext, slice: SimDuration) -> Result<bool> {
        let mut scratch = self.recv_scratch.take();
        let n = self.recv_cq.drain_into(sim, &mut scratch, CQ_BATCH, slice);
        let mut result = Ok(());
        for c in scratch.iter() {
            result = self.process_inbound(sim, c);
            if result.is_err() {
                break;
            }
        }
        self.recv_scratch.put(scratch);
        result?;
        Ok(n > 0)
    }

    /// Demultiplexes one inbound completion: stale datagrams are recycled,
    /// credit updates folded into the credit map, data pushed to the gate.
    fn process_inbound(&self, sim: &SimContext, c: &Completion) -> Result<()> {
        if c.status != WcStatus::Success {
            return Err(ShuffleError::CompletionError(
                "UD receive completed in error",
            ));
        }
        let pool = self.recv_pool_dynamic.lock().clone().ok_or(
            ShuffleError::CompletionError("UD receive before the pool was bootstrapped"),
        )?;
        let mut buf = Buffer::try_new(pool, c.wr_id as usize, self.mtu)?;
        let header = buf.read_header()?;
        if header.epoch != self.cfg.epoch {
            // Leftover datagram from a fenced-off attempt — stale data or
            // a stale credit grant, either would corrupt the new attempt's
            // counting. Recycle the slot without acting on the message.
            self.recv_obs.stale_drop();
            self.qp.post_recv(
                sim,
                RecvWr {
                    wr_id: buf.offset() as u64,
                    mr: buf.region().clone(),
                    offset: buf.offset(),
                    len: self.mtu,
                },
            )?;
            *self.last_progress.lock() = sim.now();
            return Ok(());
        }
        match header.kind {
            MsgKind::Credit => {
                // Absolute credit: later updates supersede earlier ones, so
                // out-of-order arrival needs only a max().
                let mut credit = self.credit.lock();
                let e = credit.entry(c.src_node).or_insert(0);
                *e = (*e).max(header.counter);
                drop(credit);
                // Recycle the receive slot immediately; control traffic does
                // not count toward data credit.
                self.qp.post_recv(
                    sim,
                    RecvWr {
                        wr_id: buf.offset() as u64,
                        mr: buf.region().clone(),
                        offset: buf.offset(),
                        len: self.mtu,
                    },
                )?;
                *self.last_progress.lock() = sim.now();
                Ok(())
            }
            MsgKind::Data => {
                buf.set_len(header.payload_len as usize)?;
                self.bytes_received
                    .fetch_add(header.payload_len as u64, Ordering::Relaxed);
                self.recv_obs.received(header.payload_len as u64);
                {
                    let mut srcs = self.srcs.lock();
                    let entry = srcs.entry(header.src).or_insert(SrcCount {
                        node: c.src_node,
                        received: 0,
                        expected: None,
                    });
                    entry.received += 1;
                    if header.state == StreamState::Depleted {
                        entry.expected = Some(header.counter);
                    }
                    self.audit.counted_receive(
                        header.src as u64,
                        entry.received,
                        entry.expected,
                        sim.now().as_nanos(),
                    );
                }
                *self.last_progress.lock() = sim.now();
                self.audit.delivered(buf_id(&buf), sim.now().as_nanos());
                self.data_gate.push(Delivery {
                    state: header.state,
                    src: EndpointId(header.src),
                    src_tid: header.src_tid,
                    remote: 0,
                    local: buf,
                });
                Ok(())
            }
        }
    }

    /// Drains a batch of send completions, recycling buffers whose every
    /// destination has acknowledged.
    fn reap_sends(&self, sim: &SimContext, slice: SimDuration) -> Result<bool> {
        let mut scratch = self.send_scratch.take();
        let n = self.send_cq.drain_into(sim, &mut scratch, CQ_BATCH, slice);
        let result = self.process_send_batch(sim, &scratch);
        self.send_scratch.put(scratch);
        result?;
        Ok(n > 0)
    }

    fn process_send_batch(&self, sim: &SimContext, batch: &[Completion]) -> Result<()> {
        for c in batch {
            if c.status != WcStatus::Success {
                return Err(ShuffleError::CompletionError("UD send failed"));
            }
            let fully_acked = {
                let mut outstanding = self.outstanding.lock();
                let Some(remaining) = outstanding.get_mut(&c.wr_id) else {
                    return Err(ShuffleError::CompletionError(
                        "UD send completion for unknown buffer",
                    ));
                };
                *remaining -= 1;
                if *remaining == 0 {
                    outstanding.remove(&c.wr_id);
                    true
                } else {
                    false
                }
            };
            if fully_acked {
                self.audit.buffer_recycled(
                    BufId {
                        rkey: self.pool.region().rkey(),
                        offset: c.wr_id,
                    },
                    sim.now().as_nanos(),
                );
                self.pool.recycle_offset(c.wr_id as usize)?;
            }
        }
        Ok(())
    }

    /// Whether every expected source has delivered all counted messages.
    ///
    /// # Errors
    ///
    /// [`ShuffleError::Corrupt`] if a source delivered *more* messages
    /// than its `Depleted` counter declared — a duplicated datagram or a
    /// corrupted counter, either way unrecoverable within this attempt.
    fn check_done(&self) -> Result<DoneState> {
        let expected = self.expected_srcs.lock();
        if expected.is_empty() {
            return Ok(DoneState::Done);
        }
        let srcs = self.srcs.lock();
        let mut waiting_for_stragglers = false;
        for (&ep, _) in expected.iter() {
            match srcs.get(&ep) {
                Some(s) => match s.expected {
                    Some(total) if s.received == total => {}
                    Some(total) if s.received > total => {
                        return Err(ShuffleError::Corrupt(format!(
                            "source {ep} delivered {} messages but declared {total}",
                            s.received
                        )));
                    }
                    Some(_) => waiting_for_stragglers = true,
                    None => return Ok(DoneState::InProgress),
                },
                None => return Ok(DoneState::InProgress),
            }
        }
        if waiting_for_stragglers {
            Ok(DoneState::WaitingForStragglers)
        } else {
            Ok(DoneState::Done)
        }
    }

    /// The cached AH list for a multicast destination set, built on first
    /// use. Steady-state lookups borrow the key as a slice — no allocation.
    fn cached_mcast_ahs(&self, dest: &[NodeId]) -> Result<Arc<Vec<AddressHandle>>> {
        if let Some(ahs) = self.mcast_ahs.lock().get(dest) {
            return Ok(ahs.clone());
        }
        let built = {
            let peers = self.peer_ahs.lock();
            let mut ahs = Vec::with_capacity(dest.len());
            for &d in dest {
                ahs.push(*peers.get(&d).ok_or_else(|| {
                    ShuffleError::Config(format!("unknown destination node {d}"))
                })?);
            }
            Arc::new(ahs)
        };
        self.mcast_ahs
            .lock()
            .insert(dest.to_vec(), built.clone()); // alloc-ok: one-time cache fill per distinct destination set
        Ok(built)
    }

    /// Builds the restart error naming the worst straggler source.
    fn straggler_error(&self) -> ShuffleError {
        let srcs = self.srcs.lock();
        for (&ep, s) in srcs.iter() {
            if let Some(total) = s.expected {
                if s.received < total {
                    return ShuffleError::NetworkErrorRestartQuery {
                        src: ep,
                        expected: total,
                        received: s.received,
                    };
                }
            }
        }
        ShuffleError::NetworkErrorRestartQuery {
            src: u32::MAX,
            expected: 0,
            received: 0,
        }
    }
}

enum DoneState {
    InProgress,
    WaitingForStragglers,
    Done,
}

impl SendEndpoint for SrUdSendEndpoint {
    fn id(&self) -> EndpointId {
        self.shared.send_id
    }

    fn send(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
        state: StreamState,
    ) -> Result<()> {
        assert!(!dest.is_empty(), "send needs at least one destination");
        let s = &self.shared;
        if s.cfg.native_multicast && dest.len() > 1 && state == StreamState::MoreData {
            return self.send_native_multicast(sim, buf, dest);
        }
        s.outstanding
            .lock()
            .insert(buf.offset() as u64, dest.len() as u32);
        s.audit.buffer_sent(buf_id(&buf), sim.now().as_nanos());
        for &d in dest {
            let ah = *s
                .peer_ahs
                .lock()
                .get(&d)
                .ok_or_else(|| ShuffleError::Config(format!("unknown destination node {d}")))?;
            s.consume_credit(sim, d)?;
            let total = {
                let mut sent = s.sent_data.lock();
                let e = sent.entry(d).or_insert(0);
                *e += 1;
                *e
            };
            let now = sim.now().as_nanos();
            s.audit.data_sent(s.send_id.0 as u64, d as u64, now);
            #[cfg(feature = "saboteur")]
            let total = if state == StreamState::Depleted
                && crate::sabotage::take(crate::sabotage::Sabotage::UnderreportDepletedCount)
            {
                total - 1
            } else {
                total
            };
            if state == StreamState::Depleted {
                s.audit
                    .depleted_announced(s.send_id.0 as u64, d as u64, total, now);
            }
            // Per-destination header: the Depleted counter is specific to
            // each destination, so it is written immediately before posting.
            let header = MsgHeader {
                src: s.send_id.0,
                kind: MsgKind::Data,
                state,
                epoch: s.cfg.epoch,
                payload_len: buf.len() as u32,
                src_tid: buf.tag(),
                counter: total,
                remote_addr: buf.offset() as u64,
            };
            buf.write_header(&header)?;
            let guard = s.post_lock.lock(sim);
            if s.cfg.post_overhead > SimDuration::ZERO {
                sim.sleep(s.cfg.post_overhead);
            }
            s.qp.post_send(
                sim,
                SendWr {
                    wr_id: buf.offset() as u64,
                    mr: buf.region().clone(),
                    offset: buf.offset(),
                    len: buf.message_len(),
                    imm: None,
                    ah: Some(ah),
                },
            )?;
            drop(guard);
            s.send_obs.sent(d, buf.len() as u64);
        }
        Ok(())
    }

    fn get_free(&self, sim: &SimContext) -> Result<Buffer> {
        let s = &self.shared;
        let deadline = sim.now() + s.cfg.stall_timeout;
        let mut backoff = Backoff::new(s.cfg.poll_interval * 8);
        loop {
            if let Some(buf) = s.pool.try_take() {
                s.audit.buffer_taken(buf_id(&buf), sim.now().as_nanos());
                return Ok(buf);
            }
            if sim.now() >= deadline {
                return Err(ShuffleError::Stalled("waiting for a free UD send buffer"));
            }
            if s.reap_sends(sim, backoff.next())? {
                backoff.reset();
            }
        }
    }

    fn registered_bytes(&self) -> usize {
        self.shared.pool.region().len()
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(self.shared.setup_cost_send);
    }

    fn quiesce(&self, sim: &SimContext, dest: NodeId) -> Result<()> {
        self.shared.quiesce_dest(sim, dest)
    }
}

impl SrUdSendEndpoint {
    /// Group send through the switch's multicast replication: consumes one
    /// credit per member (each still consumes a posted receive), then posts
    /// a single work request.
    fn send_native_multicast(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
    ) -> Result<()> {
        let s = &self.shared;
        // AH lists are cached per destination set at first use (satellite
        // of the hot-path pass): steady-state multicast sends rebuild
        // nothing.
        let ahs = s.cached_mcast_ahs(dest)?;
        for &d in dest {
            s.consume_credit(sim, d)?;
            let mut sent = s.sent_data.lock();
            *sent.entry(d).or_insert(0) += 1;
            drop(sent);
            s.audit
                .data_sent(s.send_id.0 as u64, d as u64, sim.now().as_nanos());
        }
        let header = MsgHeader {
            src: s.send_id.0,
            kind: MsgKind::Data,
            state: StreamState::MoreData,
            epoch: s.cfg.epoch,
            payload_len: buf.len() as u32,
            src_tid: buf.tag(),
            counter: 0, // Only read on Depleted, which never multicasts.
            remote_addr: buf.offset() as u64,
        };
        buf.write_header(&header)?;
        s.audit.buffer_sent(buf_id(&buf), sim.now().as_nanos());
        s.outstanding.lock().insert(buf.offset() as u64, 1);
        let guard = s.post_lock.lock(sim);
        if s.cfg.post_overhead > SimDuration::ZERO {
            sim.sleep(s.cfg.post_overhead);
        }
        s.qp.post_send_multicast(
            sim,
            SendWr {
                wr_id: buf.offset() as u64,
                mr: buf.region().clone(),
                offset: buf.offset(),
                len: buf.message_len(),
                imm: None,
                ah: None,
            },
            &ahs,
        )?;
        drop(guard);
        for &d in dest {
            s.send_obs.sent(d, buf.len() as u64);
        }
        Ok(())
    }
}

impl ReceiveEndpoint for SrUdReceiveEndpoint {
    fn id(&self) -> EndpointId {
        self.shared.recv_id
    }

    fn get_data(&self, sim: &SimContext) -> Result<Option<Delivery>> {
        let s = &self.shared;
        let stall_deadline = sim.now() + s.cfg.stall_timeout;
        let mut backoff = Backoff::new(s.cfg.poll_interval * 16);
        loop {
            if let Some(d) = s.data_gate.try_recv() {
                return Ok(Some(d));
            }
            if s.done.load(Ordering::SeqCst) {
                return Ok(None);
            }
            if s.drain_inbound(sim, backoff.next())? {
                backoff.reset();
                continue;
            }
            // No progress this slice: evaluate termination.
            match s.check_done()? {
                DoneState::Done => {
                    if s.data_gate.is_empty() {
                        s.done.store(true, Ordering::SeqCst);
                        return Ok(None);
                    }
                }
                DoneState::WaitingForStragglers => {
                    // All totals are known but packets are missing — either
                    // still in flight (common: out-of-order delivery) or
                    // lost (rare). Wait bounded time since the last arrival.
                    let last = *s.last_progress.lock();
                    if sim.now() >= last + s.cfg.depleted_timeout {
                        return Err(s.straggler_error());
                    }
                }
                DoneState::InProgress => {
                    if sim.now() >= stall_deadline {
                        return Err(ShuffleError::Stalled(
                            "UD receive endpoint made no progress",
                        ));
                    }
                }
            }
        }
    }

    fn release(
        &self,
        sim: &SimContext,
        _remote: u64,
        local: Buffer,
        src: EndpointId,
    ) -> Result<()> {
        let s = &self.shared;
        s.audit.released(buf_id(&local), sim.now().as_nanos());
        // Repost the receive slot.
        s.qp.post_recv(
            sim,
            RecvWr {
                wr_id: local.offset() as u64,
                mr: local.region().clone(),
                offset: local.offset(),
                len: s.mtu,
            },
        )?;
        let src_node = {
            let map = s.expected_srcs.lock();
            match map.get(&src.0) {
                Some(&n) => n,
                // Unknown source (e.g. tests releasing synthetic buffers):
                // fall back to the recorded delivery source.
                None => match s.srcs.lock().get(&src.0) {
                    Some(sc) => sc.node,
                    None => return Ok(()),
                },
            }
        };
        let (credit_now, write_back) = {
            let mut grants = s.grants.lock();
            let e = grants.entry(src_node).or_insert((0, 0));
            e.0 += 1;
            e.1 += 1;
            let wb = e.1.is_multiple_of(s.cfg.credit_writeback_frequency);
            (e.0, wb)
        };
        if write_back {
            s.audit.credit_granted(
                CreditLane::Ud {
                    sender: src.0 as u64,
                    dest: s.node,
                },
                credit_now,
                sim.now().as_nanos(),
            );
            self.send_credit(sim, src_node, credit_now)?;
        }
        Ok(())
    }

    fn bytes_received(&self) -> u64 {
        self.shared.bytes_received.load(Ordering::Relaxed)
    }

    fn registered_bytes(&self) -> usize {
        self.shared
            .recv_pool_dynamic
            .lock()
            .as_ref()
            .map_or(0, |p| p.len())
    }

    fn charge_setup(&self, sim: &SimContext) {
        sim.sleep(self.shared.setup_cost_recv);
    }
}

impl SrUdReceiveEndpoint {
    /// Sends an absolute-credit datagram to `dest` on the shared QP.
    fn send_credit(&self, sim: &SimContext, dest: NodeId, credit: u64) -> Result<()> {
        let s = &self.shared;
        let ah = *s
            .peer_ahs
            .lock()
            .get(&dest)
            .ok_or_else(|| ShuffleError::Config(format!("no lane to credit target {dest}")))?;
        // Credit datagrams are header-only; source them from a free send
        // buffer (waiting briefly if the pool is momentarily empty).
        let send_half = SrUdSendEndpoint { shared: s.clone() };
        let buf = send_half.get_free(sim)?;
        let header = MsgHeader {
            src: s.recv_id.0,
            kind: MsgKind::Credit,
            state: StreamState::MoreData,
            epoch: s.cfg.epoch,
            payload_len: 0,
            src_tid: 0, // Control traffic carries no flow identity.
            counter: credit,
            remote_addr: 0,
        };
        buf.write_header(&header)?;
        s.audit.buffer_sent(buf_id(&buf), sim.now().as_nanos());
        s.outstanding.lock().insert(buf.offset() as u64, 1);
        let guard = s.post_lock.lock(sim);
        if s.cfg.post_overhead > SimDuration::ZERO {
            sim.sleep(s.cfg.post_overhead);
        }
        s.qp.post_send(
            sim,
            SendWr {
                wr_id: buf.offset() as u64,
                mr: buf.region().clone(),
                offset: buf.offset(),
                len: HEADER_LEN,
                imm: None,
                ah: Some(ah),
            },
        )?;
        drop(guard);
        Ok(())
    }
}
