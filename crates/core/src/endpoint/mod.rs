//! The communication endpoint abstraction (§4.2).
//!
//! An endpoint bundles RDMA resources (Queue Pairs, completion queues,
//! registered buffers) with the transmission logic for one transport
//! design, hiding transport-level intricacies from the operators. Every
//! endpoint participating in a query plan has a unique integer id, used like
//! a TCP port/address pair.
//!
//! Four implementations mirror the paper's designs:
//!
//! * [`sr_rc`] — RDMA Send/Receive over Reliable Connection with stateless
//!   credit-based flow control (§4.4.1),
//! * [`sr_ud`] — RDMA Send/Receive over Unreliable Datagram with message
//!   counting for termination and software error handling (§4.4.2),
//! * [`rd_rc`] — one-sided RDMA Read over Reliable Connection with the
//!   FreeArr/ValidArr circular message queues (§4.4.3),
//! * [`wr_rc`] — the RDMA Write endpoint the paper lists as future work
//!   (§7), implemented here as an extension.
//!
//! All endpoint functions are thread-safe; the single-endpoint (SE)
//! operator configuration shares one endpoint among all worker threads and
//! pays for that sharing in lock contention that the simulator charges in
//! virtual time.

pub mod rd_rc;
pub mod sr_rc;
pub mod sr_ud;
pub mod wr_rc;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_audit::{AuditHandle, BufId};
use rshuffle_obs::{names, Counter, EventKind, Histogram, Labels, Obs, Stage};
use rshuffle_simnet::{NodeId, SimContext, SimDuration};
use rshuffle_verbs::{Completion, Context};

use crate::buffer::{Buffer, StreamState};
use crate::error::Result;

/// Batch size for completion-queue drains: how many completions one
/// `ibv_poll_cq`-style call retrieves at most.
pub(crate) const CQ_BATCH: usize = 64;

/// A pool of reusable completion-scratch vectors for batched CQ drains.
///
/// Endpoint drain paths take a vector, batch-drain into it, process, and
/// put it back: the steady state allocates nothing, and no lock is held
/// across a blocking drain (each concurrent drainer works on its own
/// vector, so SE-mode threads can never deadlock the kernel on a
/// parking-lot mutex).
pub(crate) struct CqScratch {
    pool: Mutex<Vec<Vec<Completion>>>,
}

impl CqScratch {
    pub(crate) fn new() -> Self {
        CqScratch {
            pool: Mutex::new(vec![Vec::with_capacity(CQ_BATCH)]),
        }
    }

    /// Takes a scratch vector (empty, capacity retained). Falls back to a
    /// fresh vector when every pooled one is in use by another thread.
    pub(crate) fn take(&self) -> Vec<Completion> {
        self.pool.lock().pop().unwrap_or_default()
    }

    /// Returns a scratch vector to the pool for reuse.
    pub(crate) fn put(&self, v: Vec<Completion>) {
        self.pool.lock().push(v);
    }
}

/// An [`AuditHandle`] for `ctx`'s node, wired to the runtime's installed
/// protocol auditor — or a no-op handle when none is installed.
pub(crate) fn audit_handle(ctx: &Context) -> AuditHandle {
    AuditHandle::new(ctx.runtime().auditor(), ctx.node() as u32)
}

/// Cluster-wide identity of `buf` for the auditor: its pool's `rkey`
/// plus the window offset (rkeys come from a global counter, so the
/// pair is unique across nodes).
pub(crate) fn buf_id(buf: &Buffer) -> BufId {
    BufId {
        rkey: buf.region().rkey(),
        offset: buf.offset() as u64,
    }
}

/// Exponential backoff for endpoint polling loops: keeps the simulator's
/// event count bounded when a wait drags on, without hurting the hot path
/// (the first polls stay at the configured interval).
#[derive(Debug)]
pub(crate) struct Backoff {
    base: SimDuration,
    cur: SimDuration,
    max: SimDuration,
}

impl Backoff {
    pub(crate) fn new(base: SimDuration) -> Self {
        Backoff {
            base,
            cur: base,
            max: SimDuration::from_micros(64),
        }
    }

    /// The next wait slice; doubles (up to the cap) on every call.
    pub(crate) fn next(&mut self) -> SimDuration {
        let d = self.cur;
        self.cur = (self.cur * 2).min(self.max);
        d
    }

    /// Resets after progress.
    pub(crate) fn reset(&mut self) {
        self.cur = self.base;
    }
}

/// Unique identifier of an endpoint within a query plan (§4.2: "used
/// similarly to a port and address pair in a TCP/IP connection").
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EndpointId(pub u32);

/// Per-destination `(bytes, messages)` counter handles.
type LaneCounters = HashMap<NodeId, (Arc<Counter>, Arc<Counter>)>;

/// Send-side observability handles shared by all four transports:
/// per-lane traffic counters (`{node,lane}`), credit-stall accounting
/// (Figure 8) and FreeArr/grant-ring poll counts for the one-sided
/// designs. Handles are cached so the hot path is a relaxed atomic RMW.
pub(crate) struct SendObs {
    obs: Arc<Obs>,
    node: u32,
    /// Lazily-created `(bytes, messages)` counters per destination lane.
    lanes: Mutex<LaneCounters>,
    credit_stalls: Arc<Counter>,
    credit_stall_ns: Arc<Counter>,
    credit_stall_hist: Arc<Histogram>,
    freearr_polls: Arc<Counter>,
}

impl SendObs {
    pub(crate) fn new(ctx: &Context, id: EndpointId) -> SendObs {
        let obs = ctx.runtime().obs().clone();
        let node = ctx.node() as u32;
        let ep = Labels::endpoint(node, id.0);
        SendObs {
            node,
            lanes: Mutex::new(HashMap::new()),
            credit_stalls: obs.metrics.counter(names::EP_CREDIT_STALLS, ep),
            credit_stall_ns: obs.metrics.counter(names::EP_CREDIT_STALL_NS, ep),
            credit_stall_hist: obs.metrics.histogram(names::EP_CREDIT_STALL_HIST_NS, ep),
            freearr_polls: obs.metrics.counter(names::EP_FREEARR_POLLS, ep),
            obs,
        }
    }

    /// Counts one data message of `bytes` payload pushed toward `dest`.
    pub(crate) fn sent(&self, dest: NodeId, bytes: u64) {
        let mut lanes = self.lanes.lock();
        let (b, m) = lanes.entry(dest).or_insert_with(|| {
            let l = Labels::lane(self.node, dest as u32);
            (
                self.obs.metrics.counter(names::EP_BYTES_SENT, l),
                self.obs.metrics.counter(names::EP_MESSAGES_SENT, l),
            )
        });
        b.add(bytes);
        m.inc();
    }

    /// Marks the beginning of a credit stall on the calling thread's
    /// track; returns the start timestamp for [`SendObs::stall_end`].
    pub(crate) fn stall_begin(&self, sim: &SimContext) -> u64 {
        let at = sim.now().as_nanos();
        self.obs.recorder.event(
            sim.node() as u32,
            sim.id().track(),
            at,
            EventKind::CreditStallBegin,
            0,
        );
        at
    }

    /// Closes a credit stall opened by [`SendObs::stall_begin`],
    /// feeding the total, the per-stall histogram, the credit-wait
    /// stage histogram and the recorder.
    pub(crate) fn stall_end(&self, sim: &SimContext, started_ns: u64) {
        let now = sim.now().as_nanos();
        let dur = now.saturating_sub(started_ns);
        self.credit_stalls.inc();
        self.credit_stall_ns.add(dur);
        self.credit_stall_hist.record(dur);
        self.obs.record_stage(Stage::CreditWait, self.node, dur);
        self.obs
            .stage_span(Stage::CreditWait, self.node, sim.id().track(), started_ns, now);
        self.obs.recorder.event(
            sim.node() as u32,
            sim.id().track(),
            now,
            EventKind::CreditStallEnd,
            dur,
        );
    }

    /// Counts one FreeArr / grant-ring poll; `progress` reports whether
    /// a release notification was consumed.
    pub(crate) fn freearr_poll(&self, sim: &SimContext, progress: bool) {
        self.freearr_polls.inc();
        self.obs.recorder.event(
            sim.node() as u32,
            sim.id().track(),
            sim.now().as_nanos(),
            EventKind::FreeArrPoll,
            progress as u64,
        );
    }
}

/// Receive-side observability handles: accepted traffic counters
/// (`{node,endpoint}`) and ValidArr poll counts for the one-sided
/// designs.
pub(crate) struct RecvObs {
    obs: Arc<Obs>,
    bytes: Arc<Counter>,
    messages: Arc<Counter>,
    validarr_polls: Arc<Counter>,
    stale_drops: Arc<Counter>,
}

impl RecvObs {
    pub(crate) fn new(ctx: &Context, id: EndpointId) -> RecvObs {
        let obs = ctx.runtime().obs().clone();
        let ep = Labels::endpoint(ctx.node() as u32, id.0);
        RecvObs {
            bytes: obs.metrics.counter(names::EP_BYTES_RECEIVED, ep),
            messages: obs.metrics.counter(names::EP_MESSAGES_RECEIVED, ep),
            validarr_polls: obs.metrics.counter(names::EP_VALIDARR_POLLS, ep),
            stale_drops: obs.metrics.counter(names::EP_STALE_EPOCH_DROPS, ep),
            obs,
        }
    }

    /// Counts one accepted data message of `bytes` payload.
    pub(crate) fn received(&self, bytes: u64) {
        self.bytes.add(bytes);
        self.messages.inc();
    }

    /// Counts one arrival fenced off by the epoch check: a leftover of
    /// a failed flow attempt, recycled without delivery.
    pub(crate) fn stale_drop(&self) {
        self.stale_drops.inc();
    }

    /// Counts one ValidArr scan; `progress` is how many announcements
    /// the scan consumed (the event's argument).
    pub(crate) fn validarr_poll(&self, sim: &SimContext, progress: u64) {
        self.validarr_polls.inc();
        self.obs.recorder.event(
            sim.node() as u32,
            sim.id().track(),
            sim.now().as_nanos(),
            EventKind::ValidArrPoll,
            progress,
        );
    }
}

/// A buffer handed out by [`ReceiveEndpoint::get_data`].
pub struct Delivery {
    /// Whether the source has more data after this buffer.
    pub state: StreamState,
    /// The endpoint that sent this buffer.
    pub src: EndpointId,
    /// The sending worker thread, from the wire header's `src_tid`
    /// field; identifies the `(src node, src thread)` flow for the
    /// recovery layer's ledger.
    pub src_tid: u16,
    /// Opaque token identifying the buffer at the remote endpoint; must be
    /// passed back to [`ReceiveEndpoint::release`]. Only meaningful for
    /// one-sided endpoints (§4.4.3); zero otherwise.
    pub remote: u64,
    /// The local RDMA-registered buffer holding the payload.
    pub local: Buffer,
}

/// The data-transmitting half of an endpoint (§4.2).
pub trait SendEndpoint: Send + Sync {
    /// This endpoint's unique id.
    fn id(&self) -> EndpointId;

    /// Schedules `buf` for transmission to every node in `dest`. The buffer
    /// must not be touched after `send` returns. `state` signals whether
    /// this is the final buffer ([`StreamState::Depleted`]) for those
    /// destinations. Does not block on the network (only on flow control).
    fn send(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
        state: StreamState,
    ) -> Result<()>;

    /// Returns an RDMA-registered buffer usable in a subsequent
    /// [`SendEndpoint::send`]. Blocks while all transmission buffers are in
    /// use.
    fn get_free(&self, sim: &SimContext) -> Result<Buffer>;

    /// Bytes of memory this endpoint registered for RDMA (Figure 9b).
    fn registered_bytes(&self) -> usize;

    /// Charges the modelled connection-setup cost (QP creation, out-of-band
    /// exchange, memory registration) to the calling thread (Figure 12).
    fn charge_setup(&self, sim: &SimContext);

    /// Blocks until the traffic this endpoint already pushed toward
    /// `dest` has drained as far as its flow-control protocol can
    /// observe — used by phase-scheduled senders so one round's
    /// messages leave the fabric before the next round starts.
    ///
    /// The reliable designs are naturally drained by their small
    /// per-peer buffer pools (at most `buffers_per_peer` messages can
    /// ever be outstanding toward one destination), so the default is
    /// a no-op; the UD design, whose credit window is deliberately
    /// deep, overrides this with a credit-return wait.
    fn quiesce(&self, _sim: &SimContext, _dest: NodeId) -> Result<()> {
        Ok(())
    }
}

/// The data-receiving half of an endpoint (§4.2).
pub trait ReceiveEndpoint: Send + Sync {
    /// This endpoint's unique id.
    fn id(&self) -> EndpointId;

    /// Returns the next delivered buffer, blocking until one is available.
    /// Returns `Ok(None)` once every source has signalled
    /// [`StreamState::Depleted`] and all data has been handed out — at that
    /// point every concurrent caller observes `None`.
    ///
    /// # Errors
    ///
    /// [`crate::ShuffleError::NetworkErrorRestartQuery`] if an unreliable
    /// transport lost messages and the wait for outstanding packets timed
    /// out (§4.4.2).
    fn get_data(&self, sim: &SimContext) -> Result<Option<Delivery>>;

    /// Returns `local` to the endpoint for reuse and, for one-sided
    /// endpoints, notifies the remote endpoint `src` that `remote` can be
    /// reclaimed. The buffer must not be touched after `release` returns.
    fn release(&self, sim: &SimContext, remote: u64, local: Buffer, src: EndpointId) -> Result<()>;

    /// Total payload bytes received so far (drives the throughput metric).
    fn bytes_received(&self) -> u64;

    /// Bytes of memory this endpoint registered for RDMA (Figure 9b).
    fn registered_bytes(&self) -> usize;

    /// Charges the modelled connection-setup cost to the calling thread
    /// (Figure 12).
    fn charge_setup(&self, sim: &SimContext);
}
