//! The communication endpoint abstraction (§4.2).
//!
//! An endpoint bundles RDMA resources (Queue Pairs, completion queues,
//! registered buffers) with the transmission logic for one transport
//! design, hiding transport-level intricacies from the operators. Every
//! endpoint participating in a query plan has a unique integer id, used like
//! a TCP port/address pair.
//!
//! Three implementations mirror the paper's §4.4:
//!
//! * [`sr_rc`] — RDMA Send/Receive over Reliable Connection with stateless
//!   credit-based flow control (§4.4.1),
//! * [`sr_ud`] — RDMA Send/Receive over Unreliable Datagram with message
//!   counting for termination and software error handling (§4.4.2),
//! * [`rd_rc`] — one-sided RDMA Read over Reliable Connection with the
//!   FreeArr/ValidArr circular message queues (§4.4.3),
//!
//! plus [`wr_rc`], the RDMA Write endpoint the paper lists as future work
//! (§7), implemented here as an extension.
//!
//! All endpoint functions are thread-safe; the single-endpoint (SE)
//! operator configuration shares one endpoint among all worker threads and
//! pays for that sharing in lock contention that the simulator charges in
//! virtual time.

pub mod rd_rc;
pub mod sr_rc;
pub mod sr_ud;
pub mod wr_rc;

use rshuffle_simnet::{NodeId, SimContext, SimDuration};

use crate::buffer::{Buffer, StreamState};
use crate::error::Result;

/// Exponential backoff for endpoint polling loops: keeps the simulator's
/// event count bounded when a wait drags on, without hurting the hot path
/// (the first polls stay at the configured interval).
#[derive(Debug)]
pub(crate) struct Backoff {
    base: SimDuration,
    cur: SimDuration,
    max: SimDuration,
}

impl Backoff {
    pub(crate) fn new(base: SimDuration) -> Self {
        Backoff {
            base,
            cur: base,
            max: SimDuration::from_micros(64),
        }
    }

    /// The next wait slice; doubles (up to the cap) on every call.
    pub(crate) fn next(&mut self) -> SimDuration {
        let d = self.cur;
        self.cur = (self.cur * 2).min(self.max);
        d
    }

    /// Resets after progress.
    pub(crate) fn reset(&mut self) {
        self.cur = self.base;
    }
}

/// Unique identifier of an endpoint within a query plan (§4.2: "used
/// similarly to a port and address pair in a TCP/IP connection").
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EndpointId(pub u32);

/// A buffer handed out by [`ReceiveEndpoint::get_data`].
pub struct Delivery {
    /// Whether the source has more data after this buffer.
    pub state: StreamState,
    /// The endpoint that sent this buffer.
    pub src: EndpointId,
    /// Opaque token identifying the buffer at the remote endpoint; must be
    /// passed back to [`ReceiveEndpoint::release`]. Only meaningful for
    /// one-sided endpoints (§4.4.3); zero otherwise.
    pub remote: u64,
    /// The local RDMA-registered buffer holding the payload.
    pub local: Buffer,
}

/// The data-transmitting half of an endpoint (§4.2).
pub trait SendEndpoint: Send + Sync {
    /// This endpoint's unique id.
    fn id(&self) -> EndpointId;

    /// Schedules `buf` for transmission to every node in `dest`. The buffer
    /// must not be touched after `send` returns. `state` signals whether
    /// this is the final buffer ([`StreamState::Depleted`]) for those
    /// destinations. Does not block on the network (only on flow control).
    fn send(
        &self,
        sim: &SimContext,
        buf: Buffer,
        dest: &[NodeId],
        state: StreamState,
    ) -> Result<()>;

    /// Returns an RDMA-registered buffer usable in a subsequent
    /// [`SendEndpoint::send`]. Blocks while all transmission buffers are in
    /// use.
    fn get_free(&self, sim: &SimContext) -> Result<Buffer>;

    /// Bytes of memory this endpoint registered for RDMA (Figure 9b).
    fn registered_bytes(&self) -> usize;

    /// Charges the modelled connection-setup cost (QP creation, out-of-band
    /// exchange, memory registration) to the calling thread (Figure 12).
    fn charge_setup(&self, sim: &SimContext);
}

/// The data-receiving half of an endpoint (§4.2).
pub trait ReceiveEndpoint: Send + Sync {
    /// This endpoint's unique id.
    fn id(&self) -> EndpointId;

    /// Returns the next delivered buffer, blocking until one is available.
    /// Returns `Ok(None)` once every source has signalled
    /// [`StreamState::Depleted`] and all data has been handed out — at that
    /// point every concurrent caller observes `None`.
    ///
    /// # Errors
    ///
    /// [`crate::ShuffleError::NetworkErrorRestartQuery`] if an unreliable
    /// transport lost messages and the wait for outstanding packets timed
    /// out (§4.4.2).
    fn get_data(&self, sim: &SimContext) -> Result<Option<Delivery>>;

    /// Returns `local` to the endpoint for reuse and, for one-sided
    /// endpoints, notifies the remote endpoint `src` that `remote` can be
    /// reclaimed. The buffer must not be touched after `release` returns.
    fn release(&self, sim: &SimContext, remote: u64, local: Buffer, src: EndpointId) -> Result<()>;

    /// Total payload bytes received so far (drives the throughput metric).
    fn bytes_received(&self) -> u64;

    /// Bytes of memory this endpoint registered for RDMA (Figure 9b).
    fn registered_bytes(&self) -> usize;

    /// Charges the modelled connection-setup cost to the calling thread
    /// (Figure 12).
    fn charge_setup(&self, sim: &SimContext);
}
