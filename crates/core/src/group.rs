//! The transmission group abstraction (§4.1, Figure 3).
//!
//! A sending node's communication pattern is described by a list of
//! *transmission groups*: the shuffle operator hashes every tuple to a group
//! index, and the buffer is transmitted to **every** node in that group.
//!
//! * Repartition: `G = {{B}, {C}, {D}}` — singleton groups.
//! * Multicast:   `G = {{B, C}, {D}}` — data for group 0 reaches B and C.
//! * Broadcast:   `G = {{B, C, D}}` — a single group with every other node.

use rshuffle_simnet::NodeId;

/// The transmission groups of one sending node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransmissionGroups {
    groups: Vec<Vec<NodeId>>,
}

impl TransmissionGroups {
    /// Creates groups from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any group is empty or a node appears twice within a group.
    pub fn new(groups: Vec<Vec<NodeId>>) -> Self {
        for (i, g) in groups.iter().enumerate() {
            assert!(!g.is_empty(), "transmission group {i} is empty");
            let mut sorted = g.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), g.len(), "group {i} contains duplicate nodes");
        }
        TransmissionGroups { groups }
    }

    /// Repartition pattern for `me` in an `n`-node cluster: one singleton
    /// group per *other* node (Figure 3a).
    pub fn repartition(me: NodeId, n: usize) -> Self {
        TransmissionGroups {
            groups: (0..n).filter(|&p| p != me).map(|p| vec![p]).collect(),
        }
    }

    /// Hash-partition pattern over all `n` nodes *including the sender*:
    /// one singleton group per node, so group index `i` routes to node `i`.
    /// Used by query plans, where a tuple hashed to the local node must
    /// stay local (delivered over NIC loopback).
    pub fn partition(n: usize) -> Self {
        TransmissionGroups {
            groups: (0..n).map(|p| vec![p]).collect(),
        }
    }

    /// Broadcast pattern for `me`: a single group with every other node
    /// (Figure 3c).
    pub fn broadcast(me: NodeId, n: usize) -> Self {
        TransmissionGroups {
            groups: vec![(0..n).filter(|&p| p != me).collect()],
        }
    }

    /// Number of groups (the range of the shuffle hash function).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The nodes of group `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn group(&self, i: usize) -> &[NodeId] {
        &self.groups[i]
    }

    /// Iterates over all groups.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.groups.iter().map(|g| g.as_slice())
    }

    /// All distinct destination nodes across all groups.
    pub fn destinations(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.groups.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether `node` is a destination of any group.
    pub fn targets(&self, node: NodeId) -> bool {
        self.groups.iter().any(|g| g.contains(&node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repartition_excludes_self() {
        let g = TransmissionGroups::repartition(1, 4);
        assert_eq!(g.len(), 3);
        assert_eq!(g.group(0), &[0]);
        assert_eq!(g.group(1), &[2]);
        assert_eq!(g.group(2), &[3]);
        assert!(!g.targets(1));
    }

    #[test]
    fn broadcast_is_single_group_of_everyone_else() {
        let g = TransmissionGroups::broadcast(0, 4);
        assert_eq!(g.len(), 1);
        assert_eq!(g.group(0), &[1, 2, 3]);
    }

    #[test]
    fn multicast_mixes_group_sizes() {
        // Figure 3b: node A multicasts to {B, C} and {D}.
        let g = TransmissionGroups::new(vec![vec![1, 2], vec![3]]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.destinations(), vec![1, 2, 3]);
    }

    #[test]
    fn destinations_dedup_across_groups() {
        let g = TransmissionGroups::new(vec![vec![1, 2], vec![2, 3]]);
        assert_eq!(g.destinations(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_group_rejected() {
        let _ = TransmissionGroups::new(vec![vec![1], vec![]]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_node_in_group_rejected() {
        let _ = TransmissionGroups::new(vec![vec![1, 1]]);
    }

    #[test]
    fn two_node_cluster_has_one_destination() {
        let g = TransmissionGroups::repartition(0, 2);
        assert_eq!(g.len(), 1);
        assert_eq!(g.group(0), &[1]);
    }
}
