//! The parallel, vectorized pull-based operator model and the paper's
//! SHUFFLE and RECEIVE operators (§4.3, Algorithms 1 and 2).
//!
//! Every operator implements a `NEXT(tid)` function returning a batch of
//! tuples plus a stream state; worker threads pass their id so operator
//! state and output buffers stay thread-partitioned (Figure 1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_simnet::{DeviceProfile, NodeId, SimContext, SimDuration};

use crate::buffer::{Buffer, StreamState};
use crate::config::EndpointMode;
use crate::endpoint::{ReceiveEndpoint, SendEndpoint};
use crate::error::{Result, ShuffleError};
use crate::group::TransmissionGroups;
use crate::phase::PhaseRunner;

/// A vectorized batch of fixed-width rows.
#[derive(Clone, Debug)]
pub struct RowBatch {
    row_size: usize,
    data: Vec<u8>,
}

impl RowBatch {
    /// Creates an empty batch for `row_size`-byte rows, pre-allocating room
    /// for `capacity_rows`.
    pub fn new(row_size: usize, capacity_rows: usize) -> Self {
        assert!(row_size > 0, "rows must have positive width");
        RowBatch {
            row_size,
            data: Vec::with_capacity(row_size * capacity_rows),
        }
    }

    /// Row width in bytes.
    pub fn row_size(&self) -> usize {
        self.row_size
    }

    /// Number of rows in the batch.
    pub fn rows(&self) -> usize {
        self.data.len() / self.row_size
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> usize {
        self.data.len()
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not exactly `row_size` bytes.
    pub fn push_row(&mut self, row: &[u8]) {
        assert_eq!(row.len(), self.row_size, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Appends `bytes` of whole rows (e.g. a received buffer payload).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of the row size.
    pub fn extend_rows(&mut self, bytes: &[u8]) {
        assert_eq!(
            bytes.len() % self.row_size,
            0,
            "payload is not whole rows ({} bytes, {}-byte rows)",
            bytes.len(),
            self.row_size
        );
        self.data.extend_from_slice(bytes);
    }

    /// Returns row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[u8] {
        &self.data[i * self.row_size..(i + 1) * self.row_size]
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(self.row_size)
    }

    /// The raw row bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Removes all rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

/// A parallel, vectorized pull-based operator (Figure 1).
pub trait Operator: Send + Sync {
    /// Returns the next batch for worker `tid`, along with whether more
    /// data may follow. After returning [`StreamState::Depleted`] the
    /// operator must keep returning `Depleted` with empty batches.
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)>;
}

/// CPU cost constants the operators charge while processing tuples.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Cost of hashing one tuple.
    pub hash_per_tuple: SimDuration,
    /// Single-core copy bandwidth, bytes/second.
    pub memcpy_bandwidth: f64,
}

impl CostModel {
    /// Extracts the cost constants from a device profile.
    pub fn from_profile(p: &DeviceProfile) -> Self {
        CostModel {
            hash_per_tuple: p.hash_per_tuple,
            memcpy_bandwidth: p.memcpy_bandwidth,
        }
    }

    /// CPU time to copy `bytes`.
    pub fn copy_time(&self, bytes: usize) -> SimDuration {
        rshuffle_simnet::resource::transfer_time(bytes, self.memcpy_bandwidth)
    }
}

/// Hash function assigning a tuple to a transmission group: the paper
/// partitions on an 8-byte key at the start of the row (R.a / the join
/// key). Fibonacci hashing spreads sequential keys.
pub fn default_partition_hash(row: &[u8]) -> u64 {
    let key = if row.len() >= 8 {
        u64::from_le_bytes(row[0..8].try_into().expect("8 bytes"))
    } else {
        row.iter().fold(0u64, |h, &b| (h << 8) | b as u64)
    };
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Shared row-hash function: row bytes to a 64-bit partition hash.
pub type PartitionHashFn = Arc<dyn Fn(&[u8]) -> u64 + Send + Sync>;

/// The SHUFFLE operator (Algorithm 1): hashes every tuple of its child to a
/// transmission group and transmits full buffers through a communication
/// endpoint.
pub struct ShuffleOperator {
    mode: EndpointMode,
    child: Arc<dyn Operator>,
    /// `endpoint[0]` for SE; `endpoint[tid]` for ME.
    endpoints: Vec<Arc<dyn SendEndpoint>>,
    groups: TransmissionGroups,
    hash: PartitionHashFn,
    /// Thread-partitioned output buffers: `outbuf[tid][group]`.
    outbuf: Vec<Mutex<Vec<Option<Buffer>>>>,
    /// Threads still running per lane; the last thread of a lane propagates
    /// Depleted on it (Algorithm 1 lines 14–17; with one lane this is the
    /// paper's "last thread" rule).
    lane_remaining: Vec<AtomicUsize>,
    /// Rows to silently drop per `(tid, group)` before transmitting again:
    /// the recovery orchestrator seeds this with the receivers' delivered
    /// watermarks so a partial retry does not resend rows that already
    /// arrived. All zeros (no skipping) on a fresh run.
    resume_skip: Vec<Mutex<Vec<u64>>>,
    threads: usize,
    cost: CostModel,
    /// Phase-scheduled transmission: the cluster-wide runner plus this
    /// node's id in the schedule. `None` (the default) keeps the classic
    /// interleaved Algorithm 1 transmission order.
    phases: Option<(Arc<PhaseRunner>, NodeId)>,
}

impl ShuffleOperator {
    /// Creates the operator for `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint count does not match the mode.
    pub fn new(
        mode: EndpointMode,
        child: Arc<dyn Operator>,
        endpoints: Vec<Arc<dyn SendEndpoint>>,
        groups: TransmissionGroups,
        threads: usize,
        cost: CostModel,
    ) -> Self {
        match mode {
            EndpointMode::Single => assert_eq!(endpoints.len(), 1, "SE needs exactly 1 endpoint"),
            EndpointMode::Multi => {
                assert_eq!(endpoints.len(), threads, "ME needs one endpoint per thread")
            }
        }
        Self::with_lanes(child, endpoints, groups, threads, cost)
    }

    /// Creates the operator with an arbitrary number of endpoint lanes
    /// (1 ≤ lanes ≤ threads); worker `tid` uses lane `tid % lanes`. This is
    /// the knob swept in Figure 11 (the number of endpoints controls the
    /// number of Queue Pairs).
    pub fn with_lanes(
        child: Arc<dyn Operator>,
        endpoints: Vec<Arc<dyn SendEndpoint>>,
        groups: TransmissionGroups,
        threads: usize,
        cost: CostModel,
    ) -> Self {
        let lanes = endpoints.len();
        assert!(
            (1..=threads).contains(&lanes),
            "need between 1 and {threads} endpoint lanes, got {lanes}"
        );
        let n_groups = groups.len();
        let lane_remaining = (0..lanes)
            .map(|l| AtomicUsize::new((0..threads).filter(|t| t % lanes == l).count()))
            .collect();
        ShuffleOperator {
            mode: if lanes == 1 {
                EndpointMode::Single
            } else {
                EndpointMode::Multi
            },
            child,
            endpoints,
            groups,
            hash: Arc::new(default_partition_hash),
            outbuf: (0..threads)
                .map(|_| Mutex::new(vec![None; n_groups]))
                .collect(),
            lane_remaining,
            resume_skip: (0..threads)
                .map(|_| Mutex::new(vec![0; n_groups]))
                .collect(),
            threads,
            cost,
            phases: None,
        }
    }

    /// Replaces the partition hash function.
    pub fn with_hash(mut self, hash: impl Fn(&[u8]) -> u64 + Send + Sync + 'static) -> Self {
        self.hash = Arc::new(hash);
        self
    }

    /// Seeds per-`(tid, group)` resume skips: worker `tid` silently drops
    /// its first `skip[tid][group]` rows hashing to `group` instead of
    /// transmitting them. Because the child replays rows in the same order
    /// and the partition hash is deterministic, this fast-forwards a
    /// retried flow past everything the receivers already consumed.
    ///
    /// # Panics
    ///
    /// Panics if `skip` is not `threads x groups`.
    pub fn with_resume_skip(self, skip: Vec<Vec<u64>>) -> Self {
        assert_eq!(skip.len(), self.threads, "need one skip row per thread");
        for (tid, per_group) in skip.into_iter().enumerate() {
            let mut slot = self.resume_skip[tid].lock();
            assert_eq!(per_group.len(), slot.len(), "need one skip per group");
            *slot = per_group;
        }
        self
    }

    /// Switches transmission to the phase-scheduled order: stage all rows
    /// per destination, then transmit one destination per schedule phase,
    /// crossing `runner`'s cluster-wide barrier between phases. `node` is
    /// this operator's node id in the schedule.
    pub fn with_phases(mut self, runner: Arc<PhaseRunner>, node: NodeId) -> Self {
        self.phases = Some((runner, node));
        self
    }

    fn endpoint(&self, tid: usize) -> &Arc<dyn SendEndpoint> {
        &self.endpoints[tid % self.endpoints.len()]
    }

    /// The phase-scheduled transmission loop. Any error aborts the runner
    /// (in the caller) so peers blocked on the barrier fail fast instead
    /// of timing out.
    fn next_phased(
        &self,
        sim: &SimContext,
        tid: usize,
        runner: &Arc<PhaseRunner>,
        node: NodeId,
    ) -> Result<(StreamState, RowBatch)> {
        let target = self.endpoint(tid).clone();
        let schedule = runner.schedule();
        // `Exchange::build` enforces singleton groups under phasing; map
        // each destination node back to its group index.
        let mut group_of: Vec<Option<usize>> = vec![None; schedule.nodes()];
        for i in 0..self.groups.len() {
            let g = self.groups.group(i);
            if g.len() == 1 && g[0] < group_of.len() {
                group_of[g[0]] = Some(i);
            }
        }
        // Stage: hash every row of the child into its destination bin
        // (plain memory; the copy into RDMA-registered buffers is charged
        // per phase below, so total CPU cost matches the unphased path).
        let mut staged: Vec<Vec<u8>> = vec![Vec::new(); self.groups.len()];
        let mut staged_lens: Vec<Vec<usize>> = vec![Vec::new(); self.groups.len()];
        loop {
            let (state, batch) = self.child.next(sim, tid)?;
            if !batch.is_empty() {
                sim.sleep(self.cost.hash_per_tuple * batch.rows() as u64);
            }
            for row in batch.iter() {
                let dest = ((self.hash)(row) % self.groups.len() as u64) as usize;
                {
                    let mut skip = self.resume_skip[tid].lock();
                    if skip[dest] > 0 {
                        skip[dest] -= 1;
                        continue;
                    }
                }
                staged[dest].extend_from_slice(row);
                staged_lens[dest].push(row.len());
            }
            if state == StreamState::Depleted {
                break;
            }
        }
        // Transmit: one destination per phase. The barrier is crossed
        // once per super-round (every PHASE_GROUP phases): inside a
        // super-round lanes drift at most PHASE_GROUP − 1 phases apart,
        // so an ingress port never serves more than PHASE_GROUP bulk
        // senders — still under the incast knee — while slow lanes
        // catch up without stretching every peer's round.
        for p in 0..schedule.num_phases() {
            if p % crate::phase::PHASE_GROUP == 0 {
                runner.wait(sim, p)?;
            }
            let Some(dest_node) = schedule.dest_of(p, node) else {
                continue;
            };
            let Some(dest) = group_of.get(dest_node).copied().flatten() else {
                continue;
            };
            let bytes = std::mem::take(&mut staged[dest]);
            let lens = std::mem::take(&mut staged_lens[dest]);
            if !bytes.is_empty() {
                sim.sleep(self.cost.copy_time(bytes.len()));
                let mut cur: Option<Buffer> = None;
                let mut off = 0usize;
                for len in lens {
                    let row = &bytes[off..off + len];
                    off += len;
                    let mut buf = match cur.take() {
                        Some(b) => b,
                        None => {
                            let mut b = target.get_free(sim)?;
                            b.set_tag(tid as u16);
                            b
                        }
                    };
                    if buf.remaining() < row.len() {
                        target.send(sim, buf, self.groups.group(dest), StreamState::MoreData)?;
                        buf = target.get_free(sim)?;
                        buf.set_tag(tid as u16);
                    }
                    buf.push(row)?;
                    cur = Some(buf);
                }
                if let Some(buf) = cur {
                    if !buf.is_empty() {
                        target.send(sim, buf, self.groups.group(dest), StreamState::MoreData)?;
                    }
                }
            }
            // A phase is only contention-free if the previous one has left
            // the fabric: wait for the endpoint to drain toward this
            // destination before reporting the phase done.
            target.quiesce(sim, dest_node)?;
        }
        // Propagate Depleted (same last-thread-per-lane rule as the
        // unphased path).
        let lane = tid % self.endpoints.len();
        let last = self.lane_remaining[lane].fetch_sub(1, Ordering::SeqCst) == 1;
        if last {
            for d in self.groups.destinations() {
                let mut buf = target.get_free(sim)?;
                buf.set_tag(tid as u16);
                target.send(sim, buf, &[d], StreamState::Depleted)?;
            }
        }
        Ok((StreamState::Depleted, RowBatch::new(1, 0)))
    }
}

impl Operator for ShuffleOperator {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        assert!(tid < self.threads, "tid {tid} out of range");
        if let Some((runner, node)) = &self.phases {
            // A source the skew-aware schedule exempted streams through
            // the ordinary unphased path below: it is not a barrier
            // party and owes the schedule nothing.
            if !runner.schedule().is_free(*node) {
                let res = self.next_phased(sim, tid, runner, *node);
                if res.is_err() {
                    runner.abort();
                }
                return res;
            }
        }
        let target = self.endpoint(tid).clone();
        loop {
            let (state, batch) = self.child.next(sim, tid)?;
            if !batch.is_empty() {
                // Charge hashing and the copy into RDMA-registered memory.
                sim.sleep(self.cost.hash_per_tuple * batch.rows() as u64);
                sim.sleep(self.cost.copy_time(batch.bytes()));
            }
            for row in batch.iter() {
                let dest = ((self.hash)(row) % self.groups.len() as u64) as usize;
                {
                    let mut skip = self.resume_skip[tid].lock();
                    if skip[dest] > 0 {
                        skip[dest] -= 1;
                        continue;
                    }
                }
                // Take the current buffer out of the slot (so `send`/
                // `get_free` are not called under the outbuf lock).
                let cur = self.outbuf[tid].lock()[dest].take();
                let mut cur = match cur {
                    Some(b) => b,
                    None => {
                        let mut b = target.get_free(sim)?;
                        b.set_tag(tid as u16);
                        b
                    }
                };
                if cur.remaining() < row.len() {
                    target.send(sim, cur, self.groups.group(dest), StreamState::MoreData)?;
                    cur = target.get_free(sim)?;
                    cur.set_tag(tid as u16);
                }
                cur.push(row)?;
                self.outbuf[tid].lock()[dest] = Some(cur);
            }
            if state == StreamState::Depleted {
                break;
            }
        }
        // Flush every partial buffer.
        for dest in 0..self.groups.len() {
            if let Some(buf) = self.outbuf[tid].lock()[dest].take() {
                if !buf.is_empty() {
                    target.send(sim, buf, self.groups.group(dest), StreamState::MoreData)?;
                }
            }
        }
        // Propagate Depleted: the last thread of each lane closes that
        // lane's endpoint (Algorithm 1, lines 14–17).
        let lane = tid % self.endpoints.len();
        let last = self.lane_remaining[lane].fetch_sub(1, Ordering::SeqCst) == 1;
        let _ = self.mode;
        if last {
            for d in self.groups.destinations() {
                let mut buf = target.get_free(sim)?;
                buf.set_tag(tid as u16);
                target.send(sim, buf, &[d], StreamState::Depleted)?;
            }
        }
        Ok((StreamState::Depleted, RowBatch::new(1, 0)))
    }
}

/// The RECEIVE operator (Algorithm 2): copies delivered buffers into
/// thread-partitioned output batches.
pub struct ReceiveOperator {
    mode: EndpointMode,
    endpoints: Vec<Arc<dyn ReceiveEndpoint>>,
    row_size: usize,
    /// Return a batch once it holds at least this many rows.
    batch_rows: usize,
    threads: usize,
    cost: CostModel,
}

impl ReceiveOperator {
    /// Creates the operator for `threads` workers producing `row_size`-byte
    /// rows in batches of `batch_rows`.
    pub fn new(
        mode: EndpointMode,
        endpoints: Vec<Arc<dyn ReceiveEndpoint>>,
        row_size: usize,
        batch_rows: usize,
        threads: usize,
        cost: CostModel,
    ) -> Self {
        match mode {
            EndpointMode::Single => assert_eq!(endpoints.len(), 1, "SE needs exactly 1 endpoint"),
            EndpointMode::Multi => {
                assert_eq!(endpoints.len(), threads, "ME needs one endpoint per thread")
            }
        }
        Self::with_lanes(endpoints, row_size, batch_rows, threads, cost)
    }

    /// Creates the operator with an arbitrary number of endpoint lanes
    /// (1 ≤ lanes ≤ threads); worker `tid` uses lane `tid % lanes`.
    pub fn with_lanes(
        endpoints: Vec<Arc<dyn ReceiveEndpoint>>,
        row_size: usize,
        batch_rows: usize,
        threads: usize,
        cost: CostModel,
    ) -> Self {
        let lanes = endpoints.len();
        assert!(
            (1..=threads).contains(&lanes),
            "need between 1 and {threads} endpoint lanes, got {lanes}"
        );
        ReceiveOperator {
            mode: if lanes == 1 {
                EndpointMode::Single
            } else {
                EndpointMode::Multi
            },
            endpoints,
            row_size,
            batch_rows,
            threads,
            cost,
        }
    }

    fn endpoint(&self, tid: usize) -> &Arc<dyn ReceiveEndpoint> {
        let _ = self.mode;
        &self.endpoints[tid % self.endpoints.len()]
    }
}

impl Operator for ReceiveOperator {
    fn next(&self, sim: &SimContext, tid: usize) -> Result<(StreamState, RowBatch)> {
        assert!(tid < self.threads, "tid {tid} out of range");
        let target = self.endpoint(tid).clone();
        let mut out = RowBatch::new(self.row_size, self.batch_rows);
        loop {
            match target.get_data(sim)? {
                Some(delivery) => {
                    if delivery.local.len() % self.row_size != 0 {
                        return Err(ShuffleError::Config(format!(
                            "received {} bytes, not a multiple of {}-byte rows",
                            delivery.local.len(),
                            self.row_size
                        )));
                    }
                    // Copy out of RDMA-registered memory (Algorithm 2,
                    // line 8) and charge the copy.
                    sim.sleep(self.cost.copy_time(delivery.local.len()));
                    delivery.local.with_payload(|p| out.extend_rows(p))?;
                    target.release(sim, delivery.remote, delivery.local, delivery.src)?;
                    if out.rows() >= self.batch_rows {
                        return Ok((StreamState::MoreData, out));
                    }
                }
                None => return Ok((StreamState::Depleted, out)),
            }
        }
    }
}
