//! The switch fabric: a full-bisection crossbar with per-port serialization.
//!
//! InfiniBand clusters of the paper's scale (≤16 nodes) sit under a single
//! non-blocking switch, so the only shared network resources are each node's
//! egress and ingress port. Modelling those two ports as FIFO
//! [`Resource`]s reproduces the first-order effects the paper relies on:
//!
//! * a single sender cannot exceed line rate (egress serialization),
//! * a receiver under incast (repartition/broadcast) caps at line rate no
//!   matter how many peers send to it (ingress serialization),
//! * per-message latency grows with message size.
//!
//! Delivery order between two nodes is FIFO; cross-sender arrival order at a
//! shared ingress port follows reservation order, which matches send order —
//! an approximation that is exact for same-size messages and bounded by one
//! serialization quantum otherwise.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::nic::{FairResource, FlowId, FlowTable};
use crate::profile::DeviceProfile;
use crate::resource::transfer_time;
use crate::time::{SimDuration, SimTime};
use crate::NodeId;

/// Messages up to this size bypass the port FIFOs (control virtual lane).
pub const CONTROL_BYPASS_BYTES: usize = 256;

/// Switch-level layout of the interconnect.
///
/// The paper's clusters (≤16 nodes) fit under one non-blocking switch;
/// scaling the shuffle to hundreds of nodes means a multi-switch fabric
/// where inter-switch links are shared — and usually oversubscribed —
/// resources of their own.
#[derive(Clone, Debug, PartialEq)]
pub enum Topology {
    /// One non-blocking crossbar: the only shared resources are each
    /// node's egress and ingress port (the original model; the default).
    SingleSwitch,
    /// A two-tier fat tree: nodes attach to leaf switches, leaves
    /// connect through a non-blocking spine. Traffic between leaves
    /// crosses the source leaf's uplink and the destination leaf's
    /// downlink — each an aggregate [`FairResource`] whose capacity is
    /// the leaf's host-facing capacity divided by the oversubscription
    /// ratio — and pays an extra spine hop of latency. Intra-leaf
    /// traffic behaves exactly like the single switch.
    FatTree {
        /// Hosts attached to each leaf switch (the last leaf may be
        /// partially filled).
        hosts_per_leaf: usize,
        /// Oversubscription ratio ≥ 1.0. At 1.0 the uplink matches the
        /// sum of host line rates (full bisection); at 4.0 the uplink
        /// carries only a quarter of it, the common datacenter shape.
        oversubscription: f64,
        /// Extra one-way latency of the leaf → spine → leaf detour.
        spine_hop_latency: SimDuration,
        /// Opt-in incast congestion-collapse model for the receiver-side
        /// shared ports ([`IncastModel`]); `None` preserves the original
        /// purely work-conserving fluid fabric byte for byte.
        incast: Option<IncastModel>,
    },
}

/// Incast congestion collapse at a shared receiving port (opt-in).
///
/// The fluid-flow fabric is work-conserving: `k` concurrent senders
/// into one port each get `1/k` of its bandwidth and the port still
/// moves at line rate in aggregate. Real switch ports do not hold that
/// ideal under deep fan-in — once the number of concurrent senders
/// exceeds the port's buffer headroom, lossless fabrics collapse into
/// congestion-tree spreading (InfiniBand credit back-pressure / PFC
/// storms) and *aggregate* goodput drops well below line rate. This
/// model captures that knee: while more than `sender_threshold`
/// distinct senders hold in-flight bulk reservations on a port, every
/// new reservation's serialization time is inflated by
/// `min(max_penalty, active_senders / sender_threshold)`.
///
/// Applied to fat-tree ingress ports and leaf downlinks only (the
/// resources a naive all-to-all overloads); control packets on the
/// bypass virtual lane are never penalized. A phase-scheduled transfer
/// keeps at most one bulk sender per port and thus never crosses the
/// threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IncastModel {
    /// Concurrent distinct senders a port absorbs at full rate (its
    /// buffer headroom, naturally about one leaf's worth of hosts).
    sender_threshold: usize,
    /// Cap on the serialization inflation factor.
    max_penalty: f64,
}

impl IncastModel {
    /// A model with the given threshold and the default 4× penalty cap.
    pub fn new(sender_threshold: usize) -> IncastModel {
        IncastModel {
            sender_threshold: sender_threshold.max(1),
            max_penalty: 4.0,
        }
    }

    /// Sets the penalty cap (clamped to ≥ 1.0).
    pub fn with_max_penalty(mut self, max_penalty: f64) -> IncastModel {
        self.max_penalty = max_penalty.max(1.0);
        self
    }

    /// Concurrent-sender knee of the model.
    pub fn sender_threshold(&self) -> usize {
        self.sender_threshold
    }

    /// Serialization inflation for a port currently serving `active`
    /// distinct bulk senders (1.0 at or below the threshold).
    pub fn penalty(&self, active: usize) -> f64 {
        self.penalty_floored(active, 1)
    }

    /// [`IncastModel::penalty`] with the sender knee floored at `floor`.
    /// Shared aggregation links (a leaf's downlink) legitimately carry
    /// one flow per host beneath them — their buffers are provisioned
    /// for it — so their knee is `max(threshold, hosts_per_leaf)`, not
    /// the single-port threshold.
    pub fn penalty_floored(&self, active: usize, floor: usize) -> f64 {
        let knee = self.sender_threshold.max(floor);
        if active <= knee {
            1.0
        } else {
            (active as f64 / knee as f64).min(self.max_penalty)
        }
    }
}

impl Topology {
    /// A fat tree with `hosts_per_leaf` hosts per leaf switch and the
    /// given oversubscription ratio, using a default 2× switch hop for
    /// the spine detour.
    pub fn fat_tree(hosts_per_leaf: usize, oversubscription: f64) -> Topology {
        Topology::FatTree {
            hosts_per_leaf: hosts_per_leaf.max(1),
            oversubscription: oversubscription.max(1.0),
            spine_hop_latency: SimDuration::from_nanos(500),
            incast: None,
        }
    }

    /// Enables the incast congestion-collapse model on a fat tree with
    /// the given sender threshold (typically one leaf's worth of
    /// hosts). No effect on a single switch — the crossbar's dedicated
    /// per-host ports have no shared fan-in point to collapse.
    pub fn with_incast(self, model: IncastModel) -> Topology {
        match self {
            Topology::SingleSwitch => Topology::SingleSwitch,
            Topology::FatTree {
                hosts_per_leaf,
                oversubscription,
                spine_hop_latency,
                ..
            } => Topology::FatTree {
                hosts_per_leaf,
                oversubscription,
                spine_hop_latency,
                incast: Some(model),
            },
        }
    }

    /// The configured incast model, if any.
    pub fn incast(&self) -> Option<IncastModel> {
        match *self {
            Topology::SingleSwitch => None,
            Topology::FatTree { incast, .. } => incast,
        }
    }

    /// Oversubscription ratio of the fabric (1.0 = full bisection).
    pub fn oversubscription(&self) -> f64 {
        match *self {
            Topology::SingleSwitch => 1.0,
            Topology::FatTree {
                oversubscription, ..
            } => oversubscription,
        }
    }

    /// The leaf switch `node` attaches to (0 under a single switch).
    pub fn leaf_of(&self, node: NodeId) -> usize {
        match *self {
            Topology::SingleSwitch => 0,
            Topology::FatTree { hosts_per_leaf, .. } => node / hosts_per_leaf,
        }
    }

    /// Number of leaf switches needed for `nodes` hosts.
    pub fn leaves(&self, nodes: usize) -> usize {
        match *self {
            Topology::SingleSwitch => 1,
            Topology::FatTree { hosts_per_leaf, .. } => nodes.div_ceil(hosts_per_leaf),
        }
    }

    /// Aggregate per-direction capacity of one leaf's spine links,
    /// given the per-host `payload_bandwidth` (bytes/second).
    pub fn uplink_bandwidth(&self, payload_bandwidth: f64) -> f64 {
        match *self {
            Topology::SingleSwitch => f64::INFINITY,
            Topology::FatTree {
                hosts_per_leaf,
                oversubscription,
                ..
            } => payload_bandwidth * hosts_per_leaf as f64 / oversubscription,
        }
    }

    /// Human-readable multi-line description of the switch tiers, for
    /// the `diag --topology` dump.
    pub fn describe(&self, nodes: usize, payload_bandwidth: f64) -> String {
        match *self {
            Topology::SingleSwitch => format!(
                "topology: single non-blocking switch\n\
                 tier 0:   {nodes} host ports @ {:.1} GiB/s per direction\n\
                 bisection: full (no oversubscription)",
                payload_bandwidth / crate::profile::GIB
            ),
            Topology::FatTree {
                hosts_per_leaf,
                oversubscription,
                spine_hop_latency,
                incast,
            } => {
                let leaves = self.leaves(nodes);
                let incast_line = match incast {
                    None => String::new(),
                    Some(m) => format!(
                        "\nincast:    collapse past {} concurrent senders/port, up to {:.1}x",
                        m.sender_threshold, m.max_penalty
                    ),
                };
                format!(
                    "topology: two-tier fat tree, {oversubscription:.1}:1 oversubscribed\n\
                     tier 0:   {nodes} host ports @ {:.1} GiB/s per direction\n\
                     tier 1:   {leaves} leaf switches × {hosts_per_leaf} hosts, uplink {:.1} GiB/s aggregate\n\
                     tier 2:   non-blocking spine, +{} ns per inter-leaf hop\n\
                     bisection: {:.1} GiB/s ({:.0}% of full){incast_line}",
                    payload_bandwidth / crate::profile::GIB,
                    self.uplink_bandwidth(payload_bandwidth) / crate::profile::GIB,
                    spine_hop_latency.as_nanos(),
                    self.uplink_bandwidth(payload_bandwidth) * leaves as f64 / 2.0
                        / crate::profile::GIB,
                    100.0 / oversubscription,
                )
            }
        }
    }
}

struct NodePorts {
    egress: Mutex<FairResource>,
    ingress: Mutex<FairResource>,
}

/// Shared spine-facing links of one leaf switch.
struct LeafPorts {
    uplink: Mutex<FairResource>,
    downlink: Mutex<FairResource>,
}

/// Per-node link-fault state driven by the fault-injection subsystem.
///
/// InfiniBand links are lossless, so a downed port *stalls* traffic (the
/// NIC retransmits at the link layer) rather than dropping it: a flap is
/// modelled by deferring departures past `down_until`. Degradation scales
/// the shared-fabric bandwidth and adds propagation latency.
#[derive(Clone, Copy, Debug)]
struct LinkFault {
    /// Messages touching this port cannot depart before this instant.
    down_until: SimTime,
    /// Multiplier on the port's effective bandwidth (1.0 = healthy).
    bw_factor: f64,
    /// Extra one-way latency added per message through this port.
    extra_latency: crate::time::SimDuration,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            down_until: SimTime::ZERO,
            bw_factor: 1.0,
            extra_latency: crate::time::SimDuration::ZERO,
        }
    }
}

/// The cluster interconnect.
pub struct Fabric {
    ports: Vec<NodePorts>,
    /// Leaf-switch uplink/downlink pairs; empty under a single switch,
    /// so the original code path is untouched byte for byte.
    leaves: Vec<LeafPorts>,
    topology: Topology,
    /// Aggregate per-direction leaf uplink capacity (bytes/second);
    /// unused under a single switch.
    uplink_bandwidth: f64,
    flows: Arc<FlowTable>,
    bandwidth: f64,
    switch_latency: crate::time::SimDuration,
    loopback_latency: crate::time::SimDuration,
    link_faults: Mutex<Vec<LinkFault>>,
    /// Incast collapse model, copied out of the topology; `None` keeps
    /// every path below bit-identical to the work-conserving fabric.
    incast: Option<IncastModel>,
    /// Distinct senders with in-flight bulk reservations, per ingress
    /// port (`[node]`) and per leaf downlink (`[leaf]`). Entries are
    /// `(sender, reservation end)` pairs, pruned lazily against each
    /// new departure. Empty when the incast model is off.
    incast_ingress: Mutex<Vec<Vec<(NodeId, SimTime)>>>,
    incast_downlink: Mutex<Vec<Vec<(NodeId, SimTime)>>>,
}

/// Prunes expired reservations from `set` and returns the penalty for
/// one more bulk reservation by `from` departing at `depart`.
fn incast_penalty(
    model: &IncastModel,
    set: &mut Vec<(NodeId, SimTime)>,
    from: NodeId,
    depart: SimTime,
    knee_floor: usize,
) -> f64 {
    set.retain(|&(_, end)| end > depart);
    let mut active = set.len();
    if !set.iter().any(|&(n, _)| n == from) {
        active += 1;
    }
    model.penalty_floored(active, knee_floor)
}

/// Records `from`'s bulk reservation on `set` as busy until `end`.
fn incast_note(set: &mut Vec<(NodeId, SimTime)>, from: NodeId, end: SimTime) {
    match set.iter_mut().find(|e| e.0 == from) {
        Some(e) => e.1 = e.1.max(end),
        None => set.push((from, end)),
    }
}

/// Inflates a serialization time by an incast penalty factor; exactly
/// the input at factor 1.0 so unpenalized paths stay bit-identical.
fn inflate(ser: SimDuration, factor: f64) -> SimDuration {
    if factor <= 1.0 {
        ser
    } else {
        SimDuration::from_nanos((ser.as_nanos() as f64 * factor).round() as u64)
    }
}

impl Fabric {
    /// Creates a fabric connecting `nodes` nodes with the bandwidth and
    /// latency of `profile`, with a private (empty) flow table.
    pub fn new(nodes: usize, profile: &DeviceProfile) -> Self {
        Self::with_flows(nodes, profile, Arc::new(FlowTable::new()))
    }

    /// Creates a fabric whose ports arbitrate across the cluster-shared
    /// `flows` weights.
    pub fn with_flows(nodes: usize, profile: &DeviceProfile, flows: Arc<FlowTable>) -> Self {
        Self::with_topology(nodes, profile, flows, Topology::SingleSwitch)
    }

    /// Creates a fabric with an explicit switch [`Topology`].
    pub fn with_topology(
        nodes: usize,
        profile: &DeviceProfile,
        flows: Arc<FlowTable>,
        topology: Topology,
    ) -> Self {
        let leaf_count = match topology {
            Topology::SingleSwitch => 0,
            Topology::FatTree { .. } => topology.leaves(nodes),
        };
        Fabric {
            ports: (0..nodes)
                .map(|_| NodePorts {
                    egress: Mutex::new(FairResource::new()),
                    ingress: Mutex::new(FairResource::new()),
                })
                .collect(),
            leaves: (0..leaf_count)
                .map(|_| LeafPorts {
                    uplink: Mutex::new(FairResource::new()),
                    downlink: Mutex::new(FairResource::new()),
                })
                .collect(),
            uplink_bandwidth: topology.uplink_bandwidth(profile.payload_bandwidth),
            incast: topology.incast(),
            incast_ingress: Mutex::new(if topology.incast().is_some() {
                vec![Vec::new(); nodes]
            } else {
                Vec::new()
            }),
            incast_downlink: Mutex::new(if topology.incast().is_some() {
                vec![Vec::new(); leaf_count]
            } else {
                Vec::new()
            }),
            topology,
            flows,
            bandwidth: profile.payload_bandwidth,
            switch_latency: profile.switch_latency,
            loopback_latency: profile.loopback_latency,
            link_faults: Mutex::new(vec![LinkFault::default(); nodes]),
        }
    }

    /// Number of nodes attached to the fabric.
    pub fn nodes(&self) -> usize {
        self.ports.len()
    }

    /// The switch topology of this fabric.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The spine detour of the path `from → to`: `None` when both nodes
    /// share a switch, otherwise the leaf pair and the spine latency.
    fn spine_path(&self, from: NodeId, to: NodeId) -> Option<(usize, usize, SimDuration)> {
        let Topology::FatTree {
            spine_hop_latency, ..
        } = self.topology
        else {
            return None;
        };
        let (src, dst) = (self.topology.leaf_of(from), self.topology.leaf_of(to));
        (src != dst).then_some((src, dst, spine_hop_latency))
    }

    /// Takes `node`'s port down until `until` (link flap). The link layer
    /// is lossless, so in-window traffic stalls instead of dropping.
    pub fn set_port_down_until(&self, node: NodeId, until: SimTime) {
        let mut faults = self.link_faults.lock();
        faults[node].down_until = faults[node].down_until.max(until);
    }

    /// Degrades `node`'s port: bandwidth scaled by `bw_factor` (clamped to
    /// a positive value) and `extra_latency` added to every message.
    pub fn set_degradation(
        &self,
        node: NodeId,
        bw_factor: f64,
        extra_latency: crate::time::SimDuration,
    ) {
        let mut faults = self.link_faults.lock();
        faults[node].bw_factor = bw_factor.max(1e-6);
        faults[node].extra_latency = extra_latency;
    }

    /// Restores `node`'s port to full bandwidth and nominal latency.
    pub fn clear_degradation(&self, node: NodeId) {
        let mut faults = self.link_faults.lock();
        faults[node].bw_factor = 1.0;
        faults[node].extra_latency = crate::time::SimDuration::ZERO;
    }

    /// Fault view for a path `from → to`: earliest departure, effective
    /// bandwidth factor, and summed extra latency.
    fn path_fault(&self, from: NodeId, to: NodeId) -> (SimTime, f64, crate::time::SimDuration) {
        let faults = self.link_faults.lock();
        let (a, b) = (faults[from], faults[to]);
        (
            a.down_until.max(b.down_until),
            a.bw_factor.min(b.bw_factor),
            a.extra_latency + b.extra_latency,
        )
    }

    /// Schedules an untagged `bytes`-sized message from `from` to `to`,
    /// departing the sender NIC at `depart` (see [`Fabric::transfer_flow`]).
    pub fn transfer(&self, from: NodeId, to: NodeId, bytes: usize, depart: SimTime) -> SimTime {
        self.transfer_flow(from, to, bytes, depart, FlowId::NONE)
    }

    /// Schedules a `bytes`-sized message belonging to `flow` from `from` to
    /// `to`, departing the sender NIC at `depart`. Returns the delivery time
    /// at the receiver NIC. Both ports are weighted-fair across flows with
    /// registered weights; untagged traffic takes the plain FIFO path.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn transfer_flow(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        depart: SimTime,
        flow: FlowId,
    ) -> SimTime {
        assert!(from < self.ports.len(), "sender {from} out of range");
        assert!(to < self.ports.len(), "receiver {to} out of range");
        if from == to {
            // Loopback: the message never touches the wire, so link faults
            // (which model the cable and switch port) do not apply.
            return depart + self.loopback_latency;
        }
        let (down_until, bw_factor, extra_latency) = self.path_fault(from, to);
        let depart = depart.max(down_until);
        let ser = transfer_time(bytes, self.bandwidth * bw_factor);
        let spine = self.spine_path(from, to);
        if bytes <= CONTROL_BYPASS_BYTES {
            // Small control packets (RDMA Read requests, 8-byte ring/credit
            // writes, ACKs) ride a dedicated virtual lane: InfiniBand's VL
            // arbitration interleaves them with bulk data at packet
            // granularity, so they never wait behind megabytes of queued
            // payload. Their bandwidth share is negligible and is not
            // charged against the ports (or the spine links).
            let hop = match spine {
                Some((_, _, lat)) => lat + self.switch_latency,
                None => SimDuration::ZERO,
            };
            return depart + ser + self.switch_latency + hop + extra_latency;
        }
        // Cut-through switching (InfiniBand): the head of the message
        // reaches the ingress port one switch latency after it starts
        // leaving the egress, so both ports stream the same bytes in
        // parallel and serialization is paid once, not twice.
        let e = self.ports[from]
            .egress
            .lock()
            .reserve_flow(depart, ser, flow, &self.flows);
        let ingress_ready = match spine {
            None => e.start + self.switch_latency,
            Some((src_leaf, dst_leaf, hop)) => {
                // Inter-leaf: stream through the source leaf's shared
                // uplink and the destination leaf's shared downlink —
                // the oversubscribed resources — still cut-through, so
                // serialization on the (faster) spine links overlaps
                // the host-port serialization.
                let ser_up = transfer_time(bytes, self.uplink_bandwidth);
                let u = self.leaves[src_leaf].uplink.lock().reserve_flow(
                    e.start + self.switch_latency,
                    ser_up,
                    flow,
                    &self.flows,
                );
                let ser_dl = match &self.incast {
                    None => ser_up,
                    Some(m) => {
                        // The downlink aggregates a leaf's worth of
                        // hosts; its knee is floored at one flow per
                        // host so a phase-scheduled transfer (at most
                        // one sender per destination port) never
                        // crosses it.
                        let floor = match self.topology {
                            Topology::FatTree { hosts_per_leaf, .. } => hosts_per_leaf,
                            Topology::SingleSwitch => 1,
                        };
                        let mut dl = self.incast_downlink.lock();
                        inflate(
                            ser_up,
                            incast_penalty(m, &mut dl[dst_leaf], from, depart, floor),
                        )
                    }
                };
                let d = self.leaves[dst_leaf].downlink.lock().reserve_flow(
                    u.start + hop,
                    ser_dl,
                    flow,
                    &self.flows,
                );
                if self.incast.is_some() {
                    incast_note(&mut self.incast_downlink.lock()[dst_leaf], from, d.end);
                }
                d.start + self.switch_latency
            }
        };
        let ser_in = match &self.incast {
            None => ser,
            Some(m) => {
                let mut ig = self.incast_ingress.lock();
                inflate(ser, incast_penalty(m, &mut ig[to], from, depart, 1))
            }
        };
        let i = self.ports[to]
            .ingress
            .lock()
            .reserve_flow(ingress_ready, ser_in, flow, &self.flows);
        if self.incast.is_some() {
            incast_note(&mut self.incast_ingress.lock()[to], from, i.end);
        }
        i.end + extra_latency
    }

    /// Schedules one `bytes`-sized message from `from` to every node in
    /// `tos`, serializing on the sender's egress port **once** — the
    /// defining property of switch-level (native) multicast. Returns the
    /// per-destination delivery times, in `tos` order.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range.
    pub fn transfer_multicast(
        &self,
        from: NodeId,
        tos: &[NodeId],
        bytes: usize,
        depart: SimTime,
    ) -> Vec<SimTime> {
        self.transfer_multicast_flow(from, tos, bytes, depart, FlowId::NONE)
    }

    /// Flow-tagged form of [`Fabric::transfer_multicast`]: one egress
    /// serialization charged to `flow`, per-destination ingress reservations
    /// likewise.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range.
    pub fn transfer_multicast_flow(
        &self,
        from: NodeId,
        tos: &[NodeId],
        bytes: usize,
        depart: SimTime,
        flow: FlowId,
    ) -> Vec<SimTime> {
        assert!(from < self.ports.len(), "sender {from} out of range");
        let (sender_down, sender_bw, sender_lat) = {
            let faults = self.link_faults.lock();
            let f = faults[from];
            (f.down_until, f.bw_factor, f.extra_latency)
        };
        let depart = depart.max(sender_down);
        let ser = transfer_time(bytes, self.bandwidth * sender_bw);
        let e = self.ports[from]
            .egress
            .lock()
            .reserve_flow(depart, ser, flow, &self.flows);
        // Fat tree: the switch tier replicates, so the source uplink
        // carries ONE copy (reserved lazily, only when some destination
        // sits on another leaf) and each destination leaf's downlink
        // carries one copy (cached per leaf below).
        let mut uplink_start: Option<SimTime> = None;
        let mut downlink_start: Vec<Option<SimTime>> = vec![None; self.leaves.len()];
        tos.iter()
            .map(|&to| {
                assert!(to < self.ports.len(), "receiver {to} out of range");
                if to == from {
                    return depart + self.loopback_latency;
                }
                let (recv_down, _, recv_lat) = {
                    let faults = self.link_faults.lock();
                    let f = faults[to];
                    (f.down_until, f.bw_factor, f.extra_latency)
                };
                let ingress_ready = match self.spine_path(from, to) {
                    None => e.start.max(recv_down) + self.switch_latency,
                    Some((src_leaf, dst_leaf, hop)) => {
                        let ser_up = transfer_time(bytes, self.uplink_bandwidth);
                        let u_start = *uplink_start.get_or_insert_with(|| {
                            self.leaves[src_leaf]
                                .uplink
                                .lock()
                                .reserve_flow(e.start + self.switch_latency, ser_up, flow, &self.flows)
                                .start
                        });
                        let d_start = match downlink_start[dst_leaf] {
                            Some(start) => start,
                            None => {
                                let d = self.leaves[dst_leaf].downlink.lock().reserve_flow(
                                    u_start + hop,
                                    ser_up,
                                    flow,
                                    &self.flows,
                                );
                                downlink_start[dst_leaf] = Some(d.start);
                                d.start
                            }
                        };
                        d_start.max(recv_down) + self.switch_latency
                    }
                };
                self.ports[to]
                    .ingress
                    .lock()
                    .reserve_flow(ingress_ready, ser, flow, &self.flows)
                    .end
                    + sender_lat
                    + recv_lat
            })
            .collect()
    }

    /// Utilization of a node's ingress port over `[0, horizon]`.
    pub fn ingress_utilization(&self, node: NodeId, horizon: SimTime) -> f64 {
        self.ports[node].ingress.lock().utilization(horizon)
    }

    /// Utilization of a node's egress port over `[0, horizon]`.
    pub fn egress_utilization(&self, node: NodeId, horizon: SimTime) -> f64 {
        self.ports[node].egress.lock().utilization(horizon)
    }

    /// Total egress-port occupancy granted to `flow` at `node`, ever.
    pub fn egress_flow_busy(&self, node: NodeId, flow: FlowId) -> SimDuration {
        self.ports[node].egress.lock().busy_for(flow)
    }

    /// Total ingress-port occupancy granted to `flow` at `node`, ever.
    pub fn ingress_flow_busy(&self, node: NodeId, flow: FlowId) -> SimDuration {
        self.ports[node].ingress.lock().busy_for(flow)
    }

    /// The cluster-shared flow-weight table this fabric arbitrates on.
    pub fn flows(&self) -> &Arc<FlowTable> {
        &self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::GIB;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, &DeviceProfile::edr())
    }

    fn topo_fabric(n: usize, topology: Topology) -> Fabric {
        Fabric::with_topology(
            n,
            &DeviceProfile::edr(),
            Arc::new(FlowTable::new()),
            topology,
        )
    }

    #[test]
    fn incast_model_penalizes_deep_fan_in() {
        // 64 hosts, 8 per leaf, 4:1 oversubscribed; all 56 remote hosts
        // blast host 0 at once. With the incast model the last delivery
        // must land materially later than on the ideal fluid fabric.
        let n = 64;
        let msg = 1 << 20;
        let ideal = topo_fabric(n, Topology::fat_tree(8, 4.0));
        let collapsed = topo_fabric(
            n,
            Topology::fat_tree(8, 4.0).with_incast(IncastModel::new(8)),
        );
        let last = |f: &Fabric| {
            let mut last = SimTime::ZERO;
            for s in 8..n {
                last = last.max(f.transfer(s, 0, msg, SimTime::ZERO));
            }
            last
        };
        let (t_ideal, t_collapsed) = (last(&ideal), last(&collapsed));
        assert!(
            t_collapsed.as_nanos() as f64 >= t_ideal.as_nanos() as f64 * 2.0,
            "56-way incast must collapse: ideal {} ns vs incast {} ns",
            t_ideal.as_nanos(),
            t_collapsed.as_nanos()
        );
    }

    #[test]
    fn incast_model_invisible_to_serial_senders() {
        // One sender at a time per port (a phased transfer) never
        // crosses the threshold: delivery times match the ideal fabric
        // exactly.
        let n = 16;
        let msg = 1 << 20;
        let ideal = topo_fabric(n, Topology::fat_tree(4, 4.0));
        let modeled = topo_fabric(
            n,
            Topology::fat_tree(4, 4.0).with_incast(IncastModel::new(4)),
        );
        let mut depart = SimTime::ZERO;
        for s in 4..10 {
            let a = ideal.transfer(s, 0, msg, depart);
            let b = modeled.transfer(s, 0, msg, depart);
            assert_eq!(a, b, "serial sender {s} must see identical delivery");
            depart = a;
        }
    }

    #[test]
    fn incast_penalty_is_capped() {
        let m = IncastModel::new(4).with_max_penalty(3.0);
        assert_eq!(m.penalty(4), 1.0);
        assert!((m.penalty(6) - 1.5).abs() < 1e-9);
        assert!((m.penalty(1000) - 3.0).abs() < 1e-9);
        // Control packets stay exempt regardless of fan-in.
        let f = topo_fabric(
            8,
            Topology::fat_tree(4, 4.0).with_incast(IncastModel::new(1)),
        );
        let ctl = f.transfer(4, 0, 64, SimTime::ZERO);
        let ctl2 = f.transfer(5, 0, 64, SimTime::ZERO);
        assert_eq!(ctl, ctl2, "bypass lane is never penalized");
    }

    #[test]
    fn single_transfer_latency() {
        let f = fabric(2);
        let p = DeviceProfile::edr();
        let delivered = f.transfer(0, 1, 64 * 1024, SimTime::ZERO);
        // Cut-through: one serialization plus the switch latency.
        let expected = (p.wire_time(64 * 1024) + p.switch_latency).as_nanos();
        assert_eq!(delivered.as_nanos(), expected);
    }

    #[test]
    fn sender_egress_serializes() {
        let f = fabric(3);
        // Node 0 sends two messages to different receivers at t=0: the
        // second waits for the first to leave the egress port.
        let d1 = f.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let d2 = f.transfer(0, 2, 1 << 20, SimTime::ZERO);
        assert!(
            d2 > d1,
            "second transfer must queue behind the first on egress"
        );
    }

    #[test]
    fn incast_caps_receiver_at_line_rate() {
        let n = 9;
        let f = fabric(n);
        let p = DeviceProfile::edr();
        let msg = 64 * 1024;
        let per_sender = 256;
        let mut last = SimTime::ZERO;
        // 8 senders blast node 0 concurrently.
        for round in 0..per_sender {
            for s in 1..n {
                // Each sender paced at its own line rate.
                let depart = SimTime::ZERO + p.wire_time(msg) * round as u64;
                last = last.max(f.transfer(s, 0, msg, depart));
            }
        }
        let total_bytes = (msg * per_sender * (n - 1)) as f64;
        let rate = total_bytes / last.as_secs_f64();
        // Receive throughput must be close to (and never above) line rate.
        assert!(
            rate <= p.payload_bandwidth * 1.001,
            "rate {} above line",
            rate / GIB
        );
        assert!(
            rate > p.payload_bandwidth * 0.95,
            "rate {} GiB/s too far below line {}",
            rate / GIB,
            p.payload_bandwidth / GIB
        );
    }

    #[test]
    fn loopback_bypasses_ports() {
        let f = fabric(2);
        let d = f.transfer(0, 0, 1 << 20, SimTime::ZERO);
        assert_eq!(
            d.as_nanos(),
            DeviceProfile::edr().loopback_latency.as_nanos()
        );
        assert_eq!(f.egress_utilization(0, SimTime::from_nanos(1)), 0.0);
    }

    #[test]
    fn disjoint_pairs_do_not_interfere() {
        let f = fabric(4);
        let d01 = f.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let d23 = f.transfer(2, 3, 1 << 20, SimTime::ZERO);
        assert_eq!(d01, d23, "full bisection: disjoint pairs see no contention");
    }

    #[test]
    fn multicast_serializes_egress_once() {
        let f = fabric(4);
        let p = DeviceProfile::edr();
        // Unicast fan-out: 3 messages serialize on the egress.
        let mut last_unicast = SimTime::ZERO;
        for to in 1..4 {
            last_unicast = last_unicast.max(f.transfer(0, to, 1 << 20, SimTime::ZERO));
        }
        // Native multicast: one egress serialization for all 3.
        let f2 = fabric(4);
        let deliveries = f2.transfer_multicast(0, &[1, 2, 3], 1 << 20, SimTime::ZERO);
        let last_multicast = deliveries.iter().copied().max().expect("non-empty");
        assert!(
            last_multicast.as_nanos() * 2 < last_unicast.as_nanos(),
            "multicast {last_multicast:?} must beat unicast fan-out {last_unicast:?}"
        );
        let ser = p.wire_time(1 << 20);
        assert_eq!(
            last_multicast.as_nanos(),
            (ser + p.switch_latency).as_nanos()
        );
    }

    #[test]
    fn control_messages_bypass_the_port_queues() {
        let f = fabric(2);
        let p = DeviceProfile::edr();
        // Saturate the egress with a 16 MiB transfer...
        let bulk_done = f.transfer(0, 1, 16 << 20, SimTime::ZERO);
        // ...a tiny control packet sent right after must NOT wait for it.
        let ctrl = f.transfer(0, 1, 64, SimTime::from_nanos(10));
        assert!(
            ctrl < bulk_done,
            "control packet {ctrl:?} queued behind bulk {bulk_done:?}"
        );
        assert!(ctrl.as_nanos() < 1_000, "control latency must stay sub-microsecond");
        // A payload-sized message does queue.
        let payload = f.transfer(0, 1, 64 * 1024, SimTime::from_nanos(10));
        assert!(payload > bulk_done, "bulk messages must respect FIFO order");
        let _ = p;
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let f = fabric(2);
        let _ = f.transfer(0, 7, 64, SimTime::ZERO);
    }

    fn fat_fabric(nodes: usize, hosts_per_leaf: usize, oversub: f64) -> Fabric {
        Fabric::with_topology(
            nodes,
            &DeviceProfile::edr(),
            Arc::new(FlowTable::new()),
            Topology::fat_tree(hosts_per_leaf, oversub),
        )
    }

    #[test]
    fn fat_tree_intra_leaf_matches_single_switch() {
        let single = fabric(8);
        let fat = fat_fabric(8, 4, 4.0);
        // Nodes 0 and 1 share a leaf: latency identical to one switch.
        let a = single.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let b = fat.transfer(0, 1, 1 << 20, SimTime::ZERO);
        assert_eq!(a.as_nanos(), b.as_nanos());
    }

    #[test]
    fn fat_tree_inter_leaf_pays_the_spine_hop() {
        let fat = fat_fabric(8, 4, 1.0);
        let intra = fat.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let inter = fat.transfer(2, 5, 1 << 20, SimTime::ZERO);
        // Full bisection: only the extra hop latency separates the two.
        assert!(inter > intra, "crossing leaves must cost extra latency");
        let delta = (inter - intra).as_nanos();
        assert!(
            delta <= 2_000,
            "full-bisection spine must add latency only, got +{delta} ns"
        );
    }

    #[test]
    fn oversubscribed_uplink_is_the_bottleneck() {
        // 8 hosts per leaf, 4:1 oversubscribed: the leaf uplink carries
        // only 2 host-links' worth, so 8 concurrent inter-leaf senders
        // on one leaf must be capped near the uplink's aggregate rate —
        // well below the 8 host-links the same batch gets at full
        // bisection.
        let p = DeviceProfile::edr();
        let msg = 8 << 20;
        let run = |oversub: f64| {
            let f = fat_fabric(16, 8, oversub);
            let mut last = SimTime::ZERO;
            for s in 0..8 {
                last = last.max(f.transfer(s, 8 + s, msg, SimTime::ZERO));
            }
            (8 * msg) as f64 / last.as_secs_f64()
        };
        let full_rate = run(1.0);
        let over_rate = run(4.0);
        let uplink = Topology::fat_tree(8, 4.0).uplink_bandwidth(p.payload_bandwidth);
        assert!(
            over_rate <= uplink * 1.05,
            "aggregate rate {:.2} GiB/s must not beat the uplink {:.2} GiB/s",
            over_rate / GIB,
            uplink / GIB
        );
        assert!(
            over_rate >= uplink * 0.6,
            "uplink badly underutilized: {:.2} of {:.2} GiB/s",
            over_rate / GIB,
            uplink / GIB
        );
        assert!(
            full_rate > over_rate * 1.8,
            "full bisection ({:.2} GiB/s) must clearly beat 4:1 ({:.2} GiB/s)",
            full_rate / GIB,
            over_rate / GIB
        );
    }

    #[test]
    fn fat_tree_control_packets_bypass_spine_queues() {
        let f = fat_fabric(8, 4, 4.0);
        // Saturate the uplink with bulk inter-leaf traffic...
        let bulk = f.transfer(0, 4, 16 << 20, SimTime::ZERO);
        // ...an inter-leaf control packet does not wait for it.
        let ctrl = f.transfer(1, 5, 64, SimTime::from_nanos(10));
        assert!(ctrl < bulk, "control lane must bypass the spine queue");
    }

    #[test]
    fn topology_geometry_and_description() {
        let t = Topology::fat_tree(4, 4.0);
        assert_eq!(t.leaf_of(0), 0);
        assert_eq!(t.leaf_of(3), 0);
        assert_eq!(t.leaf_of(4), 1);
        assert_eq!(t.leaves(9), 3, "partial leaves round up");
        let desc = t.describe(16, DeviceProfile::edr().payload_bandwidth);
        assert!(desc.contains("fat tree"));
        assert!(desc.contains("4 leaf switches"));
        let single = Topology::SingleSwitch.describe(16, DeviceProfile::edr().payload_bandwidth);
        assert!(single.contains("single non-blocking switch"));
    }

    #[test]
    fn downed_port_stalls_traffic_until_recovery() {
        let f = fabric(3);
        let healthy = f.transfer(0, 1, 64 * 1024, SimTime::ZERO);
        let down_until = SimTime::ZERO + crate::time::SimDuration::from_micros(500);
        f.set_port_down_until(1, down_until);
        // Lossless link: traffic into the downed port is deferred, not
        // dropped, and resumes exactly at recovery.
        let stalled = f.transfer(2, 1, 64 * 1024, SimTime::ZERO);
        assert!(stalled >= down_until, "transfer must wait out the flap");
        assert_eq!(
            (stalled - down_until).as_nanos(),
            healthy.as_nanos(),
            "post-recovery latency matches the healthy path"
        );
        // A disjoint pair (avoiding the ports the stalled transfer holds)
        // is unaffected.
        let depart = SimTime::ZERO + crate::time::SimDuration::from_micros(10);
        let bystander = f.transfer(0, 2, 64 * 1024, depart);
        assert_eq!((bystander - depart).as_nanos(), healthy.as_nanos());
    }

    #[test]
    fn degraded_port_stretches_serialization() {
        let f = fabric(2);
        let healthy = f.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let f2 = fabric(2);
        f2.set_degradation(1, 0.5, crate::time::SimDuration::from_micros(3));
        let degraded = f2.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let p = DeviceProfile::edr();
        let expected = (p.wire_time(1 << 20) * 2
            + p.switch_latency
            + crate::time::SimDuration::from_micros(3))
        .as_nanos();
        assert_eq!(degraded.as_nanos(), expected);
        assert!(degraded > healthy);
        // clear_degradation restores the healthy latency.
        f2.clear_degradation(1);
        let later = SimTime::ZERO + crate::time::SimDuration::from_millis(100);
        let restored = f2.transfer(0, 1, 1 << 20, later);
        assert_eq!((restored - later).as_nanos(), healthy.as_nanos());
    }
}
