//! The switch fabric: a full-bisection crossbar with per-port serialization.
//!
//! InfiniBand clusters of the paper's scale (≤16 nodes) sit under a single
//! non-blocking switch, so the only shared network resources are each node's
//! egress and ingress port. Modelling those two ports as FIFO
//! [`Resource`]s reproduces the first-order effects the paper relies on:
//!
//! * a single sender cannot exceed line rate (egress serialization),
//! * a receiver under incast (repartition/broadcast) caps at line rate no
//!   matter how many peers send to it (ingress serialization),
//! * per-message latency grows with message size.
//!
//! Delivery order between two nodes is FIFO; cross-sender arrival order at a
//! shared ingress port follows reservation order, which matches send order —
//! an approximation that is exact for same-size messages and bounded by one
//! serialization quantum otherwise.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::nic::{FairResource, FlowId, FlowTable};
use crate::profile::DeviceProfile;
use crate::resource::transfer_time;
use crate::time::{SimDuration, SimTime};
use crate::NodeId;

/// Messages up to this size bypass the port FIFOs (control virtual lane).
pub const CONTROL_BYPASS_BYTES: usize = 256;

struct NodePorts {
    egress: Mutex<FairResource>,
    ingress: Mutex<FairResource>,
}

/// Per-node link-fault state driven by the fault-injection subsystem.
///
/// InfiniBand links are lossless, so a downed port *stalls* traffic (the
/// NIC retransmits at the link layer) rather than dropping it: a flap is
/// modelled by deferring departures past `down_until`. Degradation scales
/// the shared-fabric bandwidth and adds propagation latency.
#[derive(Clone, Copy, Debug)]
struct LinkFault {
    /// Messages touching this port cannot depart before this instant.
    down_until: SimTime,
    /// Multiplier on the port's effective bandwidth (1.0 = healthy).
    bw_factor: f64,
    /// Extra one-way latency added per message through this port.
    extra_latency: crate::time::SimDuration,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            down_until: SimTime::ZERO,
            bw_factor: 1.0,
            extra_latency: crate::time::SimDuration::ZERO,
        }
    }
}

/// The cluster interconnect.
pub struct Fabric {
    ports: Vec<NodePorts>,
    flows: Arc<FlowTable>,
    bandwidth: f64,
    switch_latency: crate::time::SimDuration,
    loopback_latency: crate::time::SimDuration,
    link_faults: Mutex<Vec<LinkFault>>,
}

impl Fabric {
    /// Creates a fabric connecting `nodes` nodes with the bandwidth and
    /// latency of `profile`, with a private (empty) flow table.
    pub fn new(nodes: usize, profile: &DeviceProfile) -> Self {
        Self::with_flows(nodes, profile, Arc::new(FlowTable::new()))
    }

    /// Creates a fabric whose ports arbitrate across the cluster-shared
    /// `flows` weights.
    pub fn with_flows(nodes: usize, profile: &DeviceProfile, flows: Arc<FlowTable>) -> Self {
        Fabric {
            ports: (0..nodes)
                .map(|_| NodePorts {
                    egress: Mutex::new(FairResource::new()),
                    ingress: Mutex::new(FairResource::new()),
                })
                .collect(),
            flows,
            bandwidth: profile.payload_bandwidth,
            switch_latency: profile.switch_latency,
            loopback_latency: profile.loopback_latency,
            link_faults: Mutex::new(vec![LinkFault::default(); nodes]),
        }
    }

    /// Number of nodes attached to the fabric.
    pub fn nodes(&self) -> usize {
        self.ports.len()
    }

    /// Takes `node`'s port down until `until` (link flap). The link layer
    /// is lossless, so in-window traffic stalls instead of dropping.
    pub fn set_port_down_until(&self, node: NodeId, until: SimTime) {
        let mut faults = self.link_faults.lock();
        faults[node].down_until = faults[node].down_until.max(until);
    }

    /// Degrades `node`'s port: bandwidth scaled by `bw_factor` (clamped to
    /// a positive value) and `extra_latency` added to every message.
    pub fn set_degradation(
        &self,
        node: NodeId,
        bw_factor: f64,
        extra_latency: crate::time::SimDuration,
    ) {
        let mut faults = self.link_faults.lock();
        faults[node].bw_factor = bw_factor.max(1e-6);
        faults[node].extra_latency = extra_latency;
    }

    /// Restores `node`'s port to full bandwidth and nominal latency.
    pub fn clear_degradation(&self, node: NodeId) {
        let mut faults = self.link_faults.lock();
        faults[node].bw_factor = 1.0;
        faults[node].extra_latency = crate::time::SimDuration::ZERO;
    }

    /// Fault view for a path `from → to`: earliest departure, effective
    /// bandwidth factor, and summed extra latency.
    fn path_fault(&self, from: NodeId, to: NodeId) -> (SimTime, f64, crate::time::SimDuration) {
        let faults = self.link_faults.lock();
        let (a, b) = (faults[from], faults[to]);
        (
            a.down_until.max(b.down_until),
            a.bw_factor.min(b.bw_factor),
            a.extra_latency + b.extra_latency,
        )
    }

    /// Schedules an untagged `bytes`-sized message from `from` to `to`,
    /// departing the sender NIC at `depart` (see [`Fabric::transfer_flow`]).
    pub fn transfer(&self, from: NodeId, to: NodeId, bytes: usize, depart: SimTime) -> SimTime {
        self.transfer_flow(from, to, bytes, depart, FlowId::NONE)
    }

    /// Schedules a `bytes`-sized message belonging to `flow` from `from` to
    /// `to`, departing the sender NIC at `depart`. Returns the delivery time
    /// at the receiver NIC. Both ports are weighted-fair across flows with
    /// registered weights; untagged traffic takes the plain FIFO path.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn transfer_flow(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        depart: SimTime,
        flow: FlowId,
    ) -> SimTime {
        assert!(from < self.ports.len(), "sender {from} out of range");
        assert!(to < self.ports.len(), "receiver {to} out of range");
        if from == to {
            // Loopback: the message never touches the wire, so link faults
            // (which model the cable and switch port) do not apply.
            return depart + self.loopback_latency;
        }
        let (down_until, bw_factor, extra_latency) = self.path_fault(from, to);
        let depart = depart.max(down_until);
        let ser = transfer_time(bytes, self.bandwidth * bw_factor);
        if bytes <= CONTROL_BYPASS_BYTES {
            // Small control packets (RDMA Read requests, 8-byte ring/credit
            // writes, ACKs) ride a dedicated virtual lane: InfiniBand's VL
            // arbitration interleaves them with bulk data at packet
            // granularity, so they never wait behind megabytes of queued
            // payload. Their bandwidth share is negligible and is not
            // charged against the ports.
            return depart + ser + self.switch_latency + extra_latency;
        }
        // Cut-through switching (InfiniBand): the head of the message
        // reaches the ingress port one switch latency after it starts
        // leaving the egress, so both ports stream the same bytes in
        // parallel and serialization is paid once, not twice.
        let e = self.ports[from]
            .egress
            .lock()
            .reserve_flow(depart, ser, flow, &self.flows);
        let i = self.ports[to].ingress.lock().reserve_flow(
            e.start + self.switch_latency,
            ser,
            flow,
            &self.flows,
        );
        i.end + extra_latency
    }

    /// Schedules one `bytes`-sized message from `from` to every node in
    /// `tos`, serializing on the sender's egress port **once** — the
    /// defining property of switch-level (native) multicast. Returns the
    /// per-destination delivery times, in `tos` order.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range.
    pub fn transfer_multicast(
        &self,
        from: NodeId,
        tos: &[NodeId],
        bytes: usize,
        depart: SimTime,
    ) -> Vec<SimTime> {
        self.transfer_multicast_flow(from, tos, bytes, depart, FlowId::NONE)
    }

    /// Flow-tagged form of [`Fabric::transfer_multicast`]: one egress
    /// serialization charged to `flow`, per-destination ingress reservations
    /// likewise.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range.
    pub fn transfer_multicast_flow(
        &self,
        from: NodeId,
        tos: &[NodeId],
        bytes: usize,
        depart: SimTime,
        flow: FlowId,
    ) -> Vec<SimTime> {
        assert!(from < self.ports.len(), "sender {from} out of range");
        let (sender_down, sender_bw, sender_lat) = {
            let faults = self.link_faults.lock();
            let f = faults[from];
            (f.down_until, f.bw_factor, f.extra_latency)
        };
        let depart = depart.max(sender_down);
        let ser = transfer_time(bytes, self.bandwidth * sender_bw);
        let e = self.ports[from]
            .egress
            .lock()
            .reserve_flow(depart, ser, flow, &self.flows);
        tos.iter()
            .map(|&to| {
                assert!(to < self.ports.len(), "receiver {to} out of range");
                if to == from {
                    return depart + self.loopback_latency;
                }
                let (recv_down, _, recv_lat) = {
                    let faults = self.link_faults.lock();
                    let f = faults[to];
                    (f.down_until, f.bw_factor, f.extra_latency)
                };
                self.ports[to]
                    .ingress
                    .lock()
                    .reserve_flow(
                        e.start.max(recv_down) + self.switch_latency,
                        ser,
                        flow,
                        &self.flows,
                    )
                    .end
                    + sender_lat
                    + recv_lat
            })
            .collect()
    }

    /// Utilization of a node's ingress port over `[0, horizon]`.
    pub fn ingress_utilization(&self, node: NodeId, horizon: SimTime) -> f64 {
        self.ports[node].ingress.lock().utilization(horizon)
    }

    /// Utilization of a node's egress port over `[0, horizon]`.
    pub fn egress_utilization(&self, node: NodeId, horizon: SimTime) -> f64 {
        self.ports[node].egress.lock().utilization(horizon)
    }

    /// Total egress-port occupancy granted to `flow` at `node`, ever.
    pub fn egress_flow_busy(&self, node: NodeId, flow: FlowId) -> SimDuration {
        self.ports[node].egress.lock().busy_for(flow)
    }

    /// Total ingress-port occupancy granted to `flow` at `node`, ever.
    pub fn ingress_flow_busy(&self, node: NodeId, flow: FlowId) -> SimDuration {
        self.ports[node].ingress.lock().busy_for(flow)
    }

    /// The cluster-shared flow-weight table this fabric arbitrates on.
    pub fn flows(&self) -> &Arc<FlowTable> {
        &self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::GIB;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, &DeviceProfile::edr())
    }

    #[test]
    fn single_transfer_latency() {
        let f = fabric(2);
        let p = DeviceProfile::edr();
        let delivered = f.transfer(0, 1, 64 * 1024, SimTime::ZERO);
        // Cut-through: one serialization plus the switch latency.
        let expected = (p.wire_time(64 * 1024) + p.switch_latency).as_nanos();
        assert_eq!(delivered.as_nanos(), expected);
    }

    #[test]
    fn sender_egress_serializes() {
        let f = fabric(3);
        // Node 0 sends two messages to different receivers at t=0: the
        // second waits for the first to leave the egress port.
        let d1 = f.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let d2 = f.transfer(0, 2, 1 << 20, SimTime::ZERO);
        assert!(
            d2 > d1,
            "second transfer must queue behind the first on egress"
        );
    }

    #[test]
    fn incast_caps_receiver_at_line_rate() {
        let n = 9;
        let f = fabric(n);
        let p = DeviceProfile::edr();
        let msg = 64 * 1024;
        let per_sender = 256;
        let mut last = SimTime::ZERO;
        // 8 senders blast node 0 concurrently.
        for round in 0..per_sender {
            for s in 1..n {
                // Each sender paced at its own line rate.
                let depart = SimTime::ZERO + p.wire_time(msg) * round as u64;
                last = last.max(f.transfer(s, 0, msg, depart));
            }
        }
        let total_bytes = (msg * per_sender * (n - 1)) as f64;
        let rate = total_bytes / last.as_secs_f64();
        // Receive throughput must be close to (and never above) line rate.
        assert!(
            rate <= p.payload_bandwidth * 1.001,
            "rate {} above line",
            rate / GIB
        );
        assert!(
            rate > p.payload_bandwidth * 0.95,
            "rate {} GiB/s too far below line {}",
            rate / GIB,
            p.payload_bandwidth / GIB
        );
    }

    #[test]
    fn loopback_bypasses_ports() {
        let f = fabric(2);
        let d = f.transfer(0, 0, 1 << 20, SimTime::ZERO);
        assert_eq!(
            d.as_nanos(),
            DeviceProfile::edr().loopback_latency.as_nanos()
        );
        assert_eq!(f.egress_utilization(0, SimTime::from_nanos(1)), 0.0);
    }

    #[test]
    fn disjoint_pairs_do_not_interfere() {
        let f = fabric(4);
        let d01 = f.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let d23 = f.transfer(2, 3, 1 << 20, SimTime::ZERO);
        assert_eq!(d01, d23, "full bisection: disjoint pairs see no contention");
    }

    #[test]
    fn multicast_serializes_egress_once() {
        let f = fabric(4);
        let p = DeviceProfile::edr();
        // Unicast fan-out: 3 messages serialize on the egress.
        let mut last_unicast = SimTime::ZERO;
        for to in 1..4 {
            last_unicast = last_unicast.max(f.transfer(0, to, 1 << 20, SimTime::ZERO));
        }
        // Native multicast: one egress serialization for all 3.
        let f2 = fabric(4);
        let deliveries = f2.transfer_multicast(0, &[1, 2, 3], 1 << 20, SimTime::ZERO);
        let last_multicast = deliveries.iter().copied().max().expect("non-empty");
        assert!(
            last_multicast.as_nanos() * 2 < last_unicast.as_nanos(),
            "multicast {last_multicast:?} must beat unicast fan-out {last_unicast:?}"
        );
        let ser = p.wire_time(1 << 20);
        assert_eq!(
            last_multicast.as_nanos(),
            (ser + p.switch_latency).as_nanos()
        );
    }

    #[test]
    fn control_messages_bypass_the_port_queues() {
        let f = fabric(2);
        let p = DeviceProfile::edr();
        // Saturate the egress with a 16 MiB transfer...
        let bulk_done = f.transfer(0, 1, 16 << 20, SimTime::ZERO);
        // ...a tiny control packet sent right after must NOT wait for it.
        let ctrl = f.transfer(0, 1, 64, SimTime::from_nanos(10));
        assert!(
            ctrl < bulk_done,
            "control packet {ctrl:?} queued behind bulk {bulk_done:?}"
        );
        assert!(ctrl.as_nanos() < 1_000, "control latency must stay sub-microsecond");
        // A payload-sized message does queue.
        let payload = f.transfer(0, 1, 64 * 1024, SimTime::from_nanos(10));
        assert!(payload > bulk_done, "bulk messages must respect FIFO order");
        let _ = p;
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let f = fabric(2);
        let _ = f.transfer(0, 7, 64, SimTime::ZERO);
    }

    #[test]
    fn downed_port_stalls_traffic_until_recovery() {
        let f = fabric(3);
        let healthy = f.transfer(0, 1, 64 * 1024, SimTime::ZERO);
        let down_until = SimTime::ZERO + crate::time::SimDuration::from_micros(500);
        f.set_port_down_until(1, down_until);
        // Lossless link: traffic into the downed port is deferred, not
        // dropped, and resumes exactly at recovery.
        let stalled = f.transfer(2, 1, 64 * 1024, SimTime::ZERO);
        assert!(stalled >= down_until, "transfer must wait out the flap");
        assert_eq!(
            (stalled - down_until).as_nanos(),
            healthy.as_nanos(),
            "post-recovery latency matches the healthy path"
        );
        // A disjoint pair (avoiding the ports the stalled transfer holds)
        // is unaffected.
        let depart = SimTime::ZERO + crate::time::SimDuration::from_micros(10);
        let bystander = f.transfer(0, 2, 64 * 1024, depart);
        assert_eq!((bystander - depart).as_nanos(), healthy.as_nanos());
    }

    #[test]
    fn degraded_port_stretches_serialization() {
        let f = fabric(2);
        let healthy = f.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let f2 = fabric(2);
        f2.set_degradation(1, 0.5, crate::time::SimDuration::from_micros(3));
        let degraded = f2.transfer(0, 1, 1 << 20, SimTime::ZERO);
        let p = DeviceProfile::edr();
        let expected = (p.wire_time(1 << 20) * 2
            + p.switch_latency
            + crate::time::SimDuration::from_micros(3))
        .as_nanos();
        assert_eq!(degraded.as_nanos(), expected);
        assert!(degraded > healthy);
        // clear_degradation restores the healthy latency.
        f2.clear_degradation(1);
        let later = SimTime::ZERO + crate::time::SimDuration::from_millis(100);
        let restored = f2.transfer(0, 1, 1 << 20, later);
        assert_eq!((restored - later).as_nanos(), healthy.as_nanos());
    }
}
