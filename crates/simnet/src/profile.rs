//! Device profiles: calibration constants for the simulated clusters.
//!
//! The paper evaluates two shared clusters (§5): one with 56 Gb/s FDR
//! InfiniBand (2× Intel Xeon E5-2670v2, 10 worker threads per query
//! fragment) and one with 100 Gb/s EDR InfiniBand (2× E5-2680v4, 14 worker
//! threads). The constants below are calibrated so that the *reference*
//! measurements reported in the paper hold: the qperf line sits at ≈6 GiB/s
//! (FDR) and ≈11.5 GiB/s (EDR), and the EDR NIC caches context for many more
//! Queue Pairs than the FDR NIC (Kalia et al., FaSST/OSDI '16), which is the
//! paper's explanation for why the MQ algorithms stop degrading on EDR
//! (§5.1.3).

use crate::resource::transfer_time;
use crate::time::SimDuration;

/// One GiB in bytes, used for bandwidth constants.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Calibration constants for one cluster generation.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Human-readable name ("FDR", "EDR").
    pub name: &'static str,
    /// Nominal signalling rate in Gbit/s (56 for FDR, 100 for EDR).
    pub line_rate_gbit: f64,
    /// Achievable payload bandwidth per port direction, bytes/second.
    pub payload_bandwidth: f64,
    /// Maximum message size for the Unreliable Datagram service (the MTU).
    pub mtu: usize,
    /// Maximum message size for the Reliable Connection service.
    pub max_rc_message: usize,
    /// Worker threads per query fragment (one per CPU core used).
    pub threads_per_node: usize,

    /// Queue Pair contexts the NIC can cache on chip.
    pub qp_cache_entries: usize,
    /// Extra NIC processing time per work request on a QP-cache miss
    /// (PCIe round trip to fetch the context from host memory).
    pub qp_cache_miss: SimDuration,
    /// NIC pipeline occupancy per send/read work request.
    pub wr_nic: SimDuration,
    /// Doorbell coalescing window: a sender-side work request arriving at
    /// the NIC within this long of the previous one on the *same* QP
    /// context rides the earlier doorbell (the driver chains WQEs and
    /// rings once), paying [`DeviceProfile::wr_nic_batched`] instead of
    /// the full per-doorbell cost. Receive matching is never coalesced.
    pub doorbell_window: SimDuration,
    /// NIC pipeline occupancy for a work request absorbed into an earlier
    /// doorbell (WQE fetch amortized across the chain).
    pub wr_nic_batched: SimDuration,
    /// NIC pipeline occupancy to match an incoming message to a posted
    /// receive.
    pub wr_recv_match: SimDuration,
    /// One-way switch/port latency per message.
    pub switch_latency: SimDuration,
    /// Extra latency until the sender-side completion of a *reliable* send
    /// (the hardware ACK round trip).
    pub rc_ack_latency: SimDuration,
    /// Latency of a local (loopback) delivery that never crosses the wire.
    pub loopback_latency: SimDuration,

    /// CPU cost of posting one work request (`ibv_post_send`/`_recv`).
    pub post_wr_cpu: SimDuration,
    /// CPU cost of one completion-queue poll (`ibv_poll_cq`).
    pub poll_cq_cpu: SimDuration,
    /// Wakeup latency from a hardware completion to a polling thread
    /// observing it.
    pub completion_latency: SimDuration,
    /// Single-core memcpy bandwidth, bytes/second.
    pub memcpy_bandwidth: f64,
    /// CPU cost of hashing one tuple in the shuffle operator.
    pub hash_per_tuple: SimDuration,

    /// Connection-manager cost to create and connect one RC Queue Pair
    /// (includes the out-of-band exchange over TCP).
    pub rc_qp_setup: SimDuration,
    /// Connection-manager cost to create one UD Queue Pair and exchange its
    /// address handle.
    pub ud_qp_setup: SimDuration,
    /// Fixed per-endpoint initialization cost (allocation + bookkeeping).
    pub endpoint_setup: SimDuration,
    /// Memory registration cost per GiB of pinned memory.
    pub mr_register_per_gib: SimDuration,
    /// Memory deregistration cost per GiB.
    pub mr_deregister_per_gib: SimDuration,

    /// Kernel TCP/IP stack CPU cost per byte (IPoIB baseline). The paper
    /// profiles the IPoIB run at ~2/3 of cycles inside `send`/`recv` (§5.1.3).
    pub tcp_cpu_per_byte: SimDuration,
    /// Effective bandwidth cap of the IPoIB path (interrupt + soft-IRQ
    /// bound), bytes/second.
    pub ipoib_bandwidth: f64,
    /// MPI library overhead per message (matching, tag lookup, progress).
    pub mpi_per_message: SimDuration,
    /// MPI rendezvous handshake round-trip (RTS/CTS) for large messages.
    pub mpi_rendezvous_rtt: SimDuration,
    /// Per-sharing-thread CPU cost of posting on a Queue Pair shared by
    /// multiple cores (QP state cache line bouncing). Multiplied by the
    /// thread count for single-endpoint UD designs; this is the
    /// `ibv_post_send` contention that bottlenecks SESQ/SR (§5.1.3).
    pub sq_contention_per_thread: SimDuration,
    /// MPI eager threshold: messages up to this size are copied eagerly.
    pub mpi_eager_threshold: usize,
}

impl DeviceProfile {
    /// The 56 Gb/s FDR InfiniBand cluster (Intel Xeon E5-2670v2, 10 worker
    /// threads per fragment).
    pub fn fdr() -> Self {
        DeviceProfile {
            name: "FDR",
            line_rate_gbit: 56.0,
            payload_bandwidth: 6.2 * GIB,
            mtu: 4096,
            max_rc_message: 1 << 30,
            threads_per_node: 10,
            qp_cache_entries: 28,
            qp_cache_miss: SimDuration::from_nanos(1_500),
            wr_nic: SimDuration::from_nanos(260),
            doorbell_window: SimDuration::from_nanos(600),
            wr_nic_batched: SimDuration::from_nanos(90),
            wr_recv_match: SimDuration::from_nanos(120),
            switch_latency: SimDuration::from_nanos(300),
            rc_ack_latency: SimDuration::from_nanos(1_800),
            loopback_latency: SimDuration::from_nanos(600),
            post_wr_cpu: SimDuration::from_nanos(160),
            poll_cq_cpu: SimDuration::from_nanos(90),
            completion_latency: SimDuration::from_nanos(250),
            memcpy_bandwidth: 7.0 * GIB,
            hash_per_tuple: SimDuration::from_nanos(5),
            rc_qp_setup: SimDuration::from_micros(1_200),
            ud_qp_setup: SimDuration::from_micros(1_500),
            endpoint_setup: SimDuration::from_micros(1_000),
            mr_register_per_gib: SimDuration::from_millis(280),
            mr_deregister_per_gib: SimDuration::from_millis(60),
            tcp_cpu_per_byte: SimDuration::from_nanos(1),
            ipoib_bandwidth: 1.85 * GIB,
            mpi_per_message: SimDuration::from_nanos(1_400),
            mpi_rendezvous_rtt: SimDuration::from_micros(2),
            mpi_eager_threshold: 16 * 1024,
            sq_contention_per_thread: SimDuration::from_nanos(60),
        }
    }

    /// The 100 Gb/s EDR InfiniBand cluster (Intel Xeon E5-2680v4, 14 worker
    /// threads per fragment).
    pub fn edr() -> Self {
        DeviceProfile {
            name: "EDR",
            line_rate_gbit: 100.0,
            payload_bandwidth: 11.9 * GIB,
            mtu: 4096,
            max_rc_message: 1 << 30,
            threads_per_node: 14,
            qp_cache_entries: 640,
            qp_cache_miss: SimDuration::from_nanos(450),
            wr_nic: SimDuration::from_nanos(160),
            doorbell_window: SimDuration::from_nanos(600),
            wr_nic_batched: SimDuration::from_nanos(50),
            wr_recv_match: SimDuration::from_nanos(80),
            switch_latency: SimDuration::from_nanos(230),
            rc_ack_latency: SimDuration::from_nanos(1_200),
            loopback_latency: SimDuration::from_nanos(450),
            post_wr_cpu: SimDuration::from_nanos(130),
            poll_cq_cpu: SimDuration::from_nanos(70),
            completion_latency: SimDuration::from_nanos(200),
            memcpy_bandwidth: 8.5 * GIB,
            hash_per_tuple: SimDuration::from_nanos(4),
            rc_qp_setup: SimDuration::from_micros(1_150),
            ud_qp_setup: SimDuration::from_micros(1_400),
            endpoint_setup: SimDuration::from_micros(900),
            mr_register_per_gib: SimDuration::from_millis(240),
            mr_deregister_per_gib: SimDuration::from_millis(50),
            tcp_cpu_per_byte: SimDuration::from_nanos(1),
            ipoib_bandwidth: 3.9 * GIB,
            mpi_per_message: SimDuration::from_nanos(1_100),
            mpi_rendezvous_rtt: SimDuration::from_nanos(1_500),
            mpi_eager_threshold: 16 * 1024,
            sq_contention_per_thread: SimDuration::from_nanos(12),
        }
    }

    /// Looks a profile up by name (case-insensitive `"fdr"` / `"edr"`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "fdr" => Some(Self::fdr()),
            "edr" => Some(Self::edr()),
            _ => None,
        }
    }

    /// Serialization time of `bytes` on one port direction.
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        transfer_time(bytes, self.payload_bandwidth)
    }

    /// CPU time to copy `bytes` on one core.
    pub fn memcpy_time(&self, bytes: usize) -> SimDuration {
        transfer_time(bytes, self.memcpy_bandwidth)
    }

    /// Memory registration time for `bytes` of pinned memory.
    pub fn mr_register_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            (self.mr_register_per_gib.as_nanos() as f64 * bytes as f64 / GIB) as u64,
        )
    }

    /// Memory deregistration time for `bytes`.
    pub fn mr_deregister_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            (self.mr_deregister_per_gib.as_nanos() as f64 * bytes as f64 / GIB) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edr_is_faster_than_fdr() {
        let fdr = DeviceProfile::fdr();
        let edr = DeviceProfile::edr();
        assert!(edr.payload_bandwidth > fdr.payload_bandwidth);
        assert!(edr.qp_cache_entries > fdr.qp_cache_entries);
        assert!(edr.threads_per_node > fdr.threads_per_node);
    }

    #[test]
    fn qperf_reference_bandwidths() {
        // Calibration anchor: the paper's qperf measurements.
        let fdr = DeviceProfile::fdr();
        let edr = DeviceProfile::edr();
        assert!((5.8..6.5).contains(&(fdr.payload_bandwidth / GIB)));
        assert!((11.0..12.0).contains(&(edr.payload_bandwidth / GIB)));
    }

    #[test]
    fn wire_time_scales_linearly() {
        let p = DeviceProfile::edr();
        let t1 = p.wire_time(64 * 1024);
        let t2 = p.wire_time(128 * 1024);
        let ratio = t2.as_nanos() as f64 / t1.as_nanos() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn by_name_roundtrip() {
        assert_eq!(DeviceProfile::by_name("FDR").unwrap().name, "FDR");
        assert_eq!(DeviceProfile::by_name("edr").unwrap().name, "EDR");
        assert!(DeviceProfile::by_name("qdr").is_none());
    }

    #[test]
    fn ud_mtu_is_4k() {
        // §2.2.2: "The maximum message size in Unreliable Datagram transport
        // is 4 KiB".
        assert_eq!(DeviceProfile::fdr().mtu, 4096);
        assert_eq!(DeviceProfile::edr().mtu, 4096);
    }

    #[test]
    fn registration_cost_matches_paper_scale() {
        // §5.1.5: registering the operator's buffers takes < 5 ms.
        let p = DeviceProfile::edr();
        let cost = p.mr_register_time(16 << 20); // 16 MiB of buffers.
        assert!(cost.as_millis_f64() < 5.0);
    }
}
