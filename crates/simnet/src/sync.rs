//! Virtual-time synchronization primitives.
//!
//! [`SimMutex`] models lock contention in virtual time: a thread that blocks
//! on a held mutex is charged the wait as idle time, and the hand-off costs a
//! configurable latency. This is how the simulator reproduces the paper's
//! observation that the single-endpoint SESQ/SR design is "bottlenecked due
//! to contention for the `ibv_post_send` function" (§5.1.3): all threads
//! sharing one endpoint serialize through one `SimMutex`.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{Gate, Kernel, SimContext};
use crate::time::SimDuration;

/// A mutual-exclusion lock whose contention is visible on the virtual clock.
///
/// Unlike a host mutex (which is free in virtual time because only one
/// simulated thread runs at once), acquiring a held `SimMutex` blocks the
/// caller in virtual time until the holder releases it.
pub struct SimMutex<T> {
    inner: Arc<MutexInner<T>>,
    kernel: Kernel,
}

struct MutexInner<T> {
    state: Mutex<LockState>,
    gate: Gate<()>,
    value: Mutex<T>,
}

struct LockState {
    held: bool,
    waiters: usize,
}

impl<T> Clone for SimMutex<T> {
    fn clone(&self) -> Self {
        SimMutex {
            inner: self.inner.clone(),
            kernel: self.kernel.clone(),
        }
    }
}

/// RAII guard for [`SimMutex`]; releases the lock on drop.
pub struct SimMutexGuard<'a, T> {
    mutex: &'a SimMutex<T>,
}

impl<T: Send + 'static> SimMutex<T> {
    /// Creates a mutex around `value`. `handoff_latency` is the virtual time
    /// between a release and a blocked waiter resuming.
    pub fn new(kernel: &Kernel, value: T, handoff_latency: SimDuration) -> Self {
        SimMutex {
            inner: Arc::new(MutexInner {
                state: Mutex::new(LockState {
                    held: false,
                    waiters: 0,
                }),
                gate: Gate::new(kernel, handoff_latency),
                value: Mutex::new(value),
            }),
            kernel: kernel.clone(),
        }
    }

    /// Acquires the lock, blocking in virtual time while it is held.
    pub fn lock(&self, ctx: &SimContext) -> SimMutexGuard<'_, T> {
        loop {
            {
                let mut st = self.inner.state.lock();
                if !st.held {
                    st.held = true;
                    return SimMutexGuard { mutex: self };
                }
                st.waiters += 1;
            }
            // Wait for a release token, then retry (another thread may race
            // us to the lock; the loop keeps the protocol correct).
            self.inner.gate.recv(ctx);
            self.inner.state.lock().waiters -= 1;
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<SimMutexGuard<'_, T>> {
        let mut st = self.inner.state.lock();
        if st.held {
            None
        } else {
            st.held = true;
            Some(SimMutexGuard { mutex: self })
        }
    }
}

impl<T> SimMutex<T> {
    fn unlock(&self) {
        let has_waiters = {
            let mut st = self.inner.state.lock();
            debug_assert!(st.held, "unlock of a free SimMutex");
            st.held = false;
            st.waiters > 0
        };
        if has_waiters {
            self.inner.gate.push(());
        }
    }
}

impl<T> SimMutexGuard<'_, T> {
    /// Accesses the protected value.
    ///
    /// The closure receives a `&mut T`; the host-level lock is held only for
    /// the duration of the closure, which is safe because the guard already
    /// guarantees exclusivity in virtual time.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.mutex.inner.value.lock())
    }
}

impl<T> Drop for SimMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

/// A reusable virtual-time barrier for `n` participants.
///
/// Each barrier *generation* uses a fresh internal gate, so a thread that
/// has already advanced to the next generation can never consume a release
/// token intended for a straggler of the previous one.
pub struct SimBarrier {
    inner: Arc<BarrierInner>,
    kernel: Kernel,
}

struct BarrierInner {
    state: Mutex<BarrierState>,
    parties: usize,
}

struct BarrierState {
    arrived: usize,
    gate: Gate<()>,
}

impl Clone for SimBarrier {
    fn clone(&self) -> Self {
        SimBarrier {
            inner: self.inner.clone(),
            kernel: self.kernel.clone(),
        }
    }
}

impl SimBarrier {
    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(kernel: &Kernel, parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        SimBarrier {
            inner: Arc::new(BarrierInner {
                state: Mutex::new(BarrierState {
                    arrived: 0,
                    gate: Gate::new(kernel, SimDuration::ZERO),
                }),
                parties,
            }),
            kernel: kernel.clone(),
        }
    }

    /// Blocks until all parties have arrived. Returns `true` for exactly one
    /// caller (the last to arrive), mirroring `std::sync::Barrier`.
    pub fn wait(&self, ctx: &SimContext) -> bool {
        let (is_last, gate) = {
            let mut st = self.inner.state.lock();
            st.arrived += 1;
            if st.arrived == self.inner.parties {
                st.arrived = 0;
                // Swap in a fresh gate for the next generation; release
                // tokens go into the old one, which only this generation's
                // waiters hold.
                let old =
                    std::mem::replace(&mut st.gate, Gate::new(&self.kernel, SimDuration::ZERO));
                (true, old)
            } else {
                (false, st.gate.clone())
            }
        };
        if is_last {
            for _ in 0..self.inner.parties - 1 {
                gate.push(());
            }
            true
        } else {
            gate.recv(ctx);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn uncontended_lock_is_free() {
        let kernel = Kernel::new();
        let m = SimMutex::new(&kernel, 0u64, SimDuration::from_nanos(50));
        kernel.spawn(0, "t", move |sim| {
            let g = m.lock(&sim);
            g.with(|v| *v += 1);
            drop(g);
            assert_eq!(sim.now(), SimTime::ZERO, "uncontended lock costs nothing");
        });
        kernel.run();
    }

    #[test]
    fn contended_lock_serializes_critical_sections() {
        let kernel = Kernel::new();
        let m = SimMutex::new(&kernel, Vec::<u64>::new(), SimDuration::ZERO);
        for i in 0..4u64 {
            let m = m.clone();
            kernel.spawn(0, &format!("t{i}"), move |sim| {
                let g = m.lock(&sim);
                sim.sleep(SimDuration::from_nanos(100)); // Critical section.
                g.with(|v| v.push(i));
            });
        }
        kernel.run();
        // All four 100ns critical sections must serialize: total 400ns.
        assert_eq!(kernel.now().as_nanos(), 400);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let kernel = Kernel::new();
        let m = SimMutex::new(&kernel, (), SimDuration::ZERO);
        let m2 = m.clone();
        kernel.spawn(0, "holder", move |sim| {
            let _g = m.lock(&sim);
            sim.sleep(SimDuration::from_nanos(100));
        });
        kernel.spawn(0, "prober", move |sim| {
            sim.sleep(SimDuration::from_nanos(50));
            assert!(m2.try_lock().is_none());
            sim.sleep(SimDuration::from_nanos(100));
            assert!(m2.try_lock().is_some());
        });
        kernel.run();
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let kernel = Kernel::new();
        let barrier = SimBarrier::new(&kernel, 3);
        let lasts = Arc::new(AtomicU64::new(0));
        for i in 0..3u64 {
            let b = barrier.clone();
            let lasts = lasts.clone();
            kernel.spawn(0, &format!("t{i}"), move |sim| {
                sim.sleep(SimDuration::from_nanos(100 * (i + 1)));
                if b.wait(&sim) {
                    lasts.fetch_add(1, Ordering::SeqCst);
                }
                // Everyone resumes at the last arrival time (t=300).
                assert_eq!(sim.now().as_nanos(), 300);
            });
        }
        kernel.run();
        assert_eq!(lasts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn barrier_is_reusable() {
        let kernel = Kernel::new();
        let barrier = SimBarrier::new(&kernel, 2);
        for i in 0..2u64 {
            let b = barrier.clone();
            kernel.spawn(0, &format!("t{i}"), move |sim| {
                for round in 0..5u64 {
                    sim.sleep(SimDuration::from_nanos(10 * (i + 1)));
                    b.wait(&sim);
                    let _ = round;
                }
            });
        }
        kernel.run();
        // Each round gated by the slower thread (20ns): 5 rounds = 100ns.
        assert_eq!(kernel.now().as_nanos(), 100);
    }
}
