//! Virtual time types.
//!
//! The simulator measures time in integer nanoseconds. [`SimTime`] is an
//! absolute instant on the virtual clock (zero at kernel creation) and
//! [`SimDuration`] is a span between instants. Both are plain `u64` wrappers
//! so they are `Copy`, totally ordered and overflow-checked in debug builds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the virtual clock, in nanoseconds since simulation
/// start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the number of nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since: {earlier:?} > {self:?}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of the two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of the two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to whole
    /// nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the number of whole nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of the two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of the two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a).as_nanos(), 4);
    }

    #[test]
    fn display_formats_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    #[should_panic(expected = "SimTime underflow")]
    fn underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimDuration::from_nanos(2);
    }
}
