//! Serialized resources: the building block for bandwidth and message-rate
//! modelling.
//!
//! A [`Resource`] is something that processes one unit of work at a time in
//! FIFO order — a link port serializing bytes onto the wire, or a NIC
//! processing pipeline with a bounded message rate. Reserving the resource
//! returns the interval during which the work occupies it; contention shows
//! up as queueing delay.

use crate::time::{SimDuration, SimTime};

/// A FIFO-serialized resource in virtual time.
#[derive(Debug, Clone)]
pub struct Resource {
    free_at: SimTime,
    busy_total: SimDuration,
}

/// The interval a reservation occupies on a [`Resource`].
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct Reservation {
    /// When the work begins occupying the resource (≥ request time).
    pub start: SimTime,
    /// When the resource becomes free again.
    pub end: SimTime,
}

impl Default for Resource {
    fn default() -> Self {
        Self::new()
    }
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Resource {
            free_at: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
        }
    }

    /// Reserves the resource for `duration`, starting no earlier than `at`.
    /// Work queued behind earlier reservations starts when they drain.
    pub fn reserve(&mut self, at: SimTime, duration: SimDuration) -> Reservation {
        let start = at.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        self.busy_total += duration;
        Reservation { start, end }
    }

    /// The earliest time a new reservation could start.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time the resource has been reserved for, ever.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Utilization of the resource over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total.as_secs_f64() / horizon.as_secs_f64()
    }
}

/// Converts a transfer size and a bandwidth into a serialization delay.
///
/// # Panics
///
/// Panics if `bytes_per_sec` is not a positive finite number.
pub fn transfer_time(bytes: usize, bytes_per_sec: f64) -> SimDuration {
    assert!(
        bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
        "bandwidth must be positive, got {bytes_per_sec}"
    );
    SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new();
        let res = r.reserve(SimTime::from_nanos(100), SimDuration::from_nanos(50));
        assert_eq!(res.start.as_nanos(), 100);
        assert_eq!(res.end.as_nanos(), 150);
    }

    #[test]
    fn contended_resource_queues_fifo() {
        let mut r = Resource::new();
        let a = r.reserve(SimTime::from_nanos(0), SimDuration::from_nanos(100));
        let b = r.reserve(SimTime::from_nanos(10), SimDuration::from_nanos(100));
        assert_eq!(a.end.as_nanos(), 100);
        assert_eq!(
            b.start.as_nanos(),
            100,
            "second transfer queues behind first"
        );
        assert_eq!(b.end.as_nanos(), 200);
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = Resource::new();
        r.reserve(SimTime::from_nanos(0), SimDuration::from_nanos(10));
        let b = r.reserve(SimTime::from_nanos(1_000), SimDuration::from_nanos(10));
        assert_eq!(b.start.as_nanos(), 1_000);
        assert_eq!(r.busy_total().as_nanos(), 20);
    }

    #[test]
    fn utilization_is_busy_over_horizon() {
        let mut r = Resource::new();
        r.reserve(SimTime::ZERO, SimDuration::from_nanos(250));
        let u = r.utilization(SimTime::from_nanos(1_000));
        assert!((u - 0.25).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1 GiB/s: 1 MiB takes ~976.5 us.
        let d = transfer_time(1 << 20, (1u64 << 30) as f64);
        assert_eq!(d.as_nanos(), 976_563 /* rounded */);
    }

    #[test]
    fn saturated_throughput_equals_bandwidth() {
        // Back-to-back 64 KiB messages at 10 GiB/s for 1 ms should move
        // ~10 MiB.
        let bw = 10.0 * (1u64 << 30) as f64;
        let mut r = Resource::new();
        let mut moved = 0usize;
        let msg = 64 * 1024;
        loop {
            let res = r.reserve(SimTime::ZERO, transfer_time(msg, bw));
            if res.end > SimTime::from_nanos(1_000_000) {
                break;
            }
            moved += msg;
        }
        let expected = (bw * 1e-3) as usize;
        let err = (moved as f64 - expected as f64).abs() / expected as f64;
        assert!(err < 0.01, "moved {moved}, expected ~{expected}");
    }
}
