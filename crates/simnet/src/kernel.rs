//! The cooperative virtual-time kernel.
//!
//! Simulated threads are real OS threads, but at most one executes at any
//! moment: the kernel always hands control to the runnable entity (thread or
//! scheduled event) with the minimum virtual timestamp, breaking ties
//! deterministically (events before threads, then by sequence/thread id).
//! Timing therefore never depends on the host scheduler and simulations are
//! reproducible bit-for-bit.
//!
//! Threads advance time explicitly:
//! * [`SimContext::sleep`] models CPU work (accounted as busy time),
//! * [`Gate`] is a virtual-time channel: receivers block without consuming
//!   virtual time (accounted as idle time) until a value is pushed.
//!
//! The kernel detects global deadlock (every thread blocked, no pending
//! events) and panics with a diagnostic listing the blocked threads, which
//! turns protocol termination bugs into immediate test failures.

use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use rshuffle_obs::{names, EventKind, Labels, Obs};

use crate::time::{SimDuration, SimTime};
use crate::NodeId;

/// Identifier of a simulated thread, unique within a [`Kernel`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SimThreadId(u64);

impl SimThreadId {
    /// The thread's spawn index (0-based). Flight-recorder tracks use
    /// `index + 1` as their `tid` (tid 0 is the per-node hardware track).
    pub fn index(&self) -> u64 {
        self.0
    }

    /// The flight-recorder track id for this thread.
    pub fn track(&self) -> u32 {
        (self.0 + 1) as u32
    }
}

/// Result of a [`Gate::recv_timeout`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeout<T> {
    /// A value arrived before the deadline.
    Value(T),
    /// The deadline passed with no value available.
    TimedOut,
}

impl<T> RecvTimeout<T> {
    /// Returns the contained value.
    ///
    /// # Panics
    ///
    /// Panics if the receive timed out.
    pub fn unwrap(self) -> T {
        match self {
            RecvTimeout::Value(v) => v,
            RecvTimeout::TimedOut => panic!("called unwrap() on RecvTimeout::TimedOut"),
        }
    }
}

/// Post-mortem statistics for one simulated thread.
#[derive(Clone, Debug)]
pub struct ThreadStats {
    /// Thread name given at spawn time.
    pub name: String,
    /// Node the thread was pinned to.
    pub node: NodeId,
    /// Virtual time spent in [`SimContext::sleep`] (modelled CPU work).
    pub busy: SimDuration,
    /// Virtual time spent blocked on gates.
    pub idle: SimDuration,
    /// Virtual time at which the thread function returned.
    pub finished_at: SimTime,
}

struct Slot {
    /// `Some(t)`: runnable at virtual time `t`. `None`: running or blocked.
    resume_at: Option<SimTime>,
    cv: Arc<Condvar>,
    name: String,
    node: NodeId,
    spawned_at: SimTime,
    busy: SimDuration,
    idle: SimDuration,
}

struct EventEntry {
    at: SimTime,
    seq: u64,
    action: Box<dyn FnOnce() + Send>,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    /// Total order on events: earliest `(at, seq)` first. The sequence
    /// number is assigned monotonically by [`Kernel::schedule`], so two
    /// events at the same virtual instant always fire in the order they
    /// were scheduled — never in heap-insertion or hash order. This
    /// explicit tie-break is what makes event dispatch deterministic.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct State {
    now: SimTime,
    next_tid: u64,
    next_seq: u64,
    running: Option<SimThreadId>,
    threads: HashMap<SimThreadId, Slot>,
    runnable: BTreeSet<(SimTime, SimThreadId)>,
    events: BinaryHeap<EventEntry>,
    finished: bool,
    poisoned: Option<String>,
    stats: Vec<ThreadStats>,
    join_handles: Vec<JoinHandle<()>>,
    obs: Option<Arc<Obs>>,
    /// Straggler injection: CPU-work multiplier per node (absent = 1.0).
    cpu_slowdown: HashMap<NodeId, f64>,
}

struct Shared {
    state: Mutex<State>,
    completion: Condvar,
}

/// Handle to a virtual-time simulation kernel. Cheap to clone.
#[derive(Clone)]
pub struct Kernel {
    shared: Arc<Shared>,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Creates a new kernel with the clock at zero.
    pub fn new() -> Self {
        Kernel {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    now: SimTime::ZERO,
                    next_tid: 0,
                    next_seq: 0,
                    running: None,
                    threads: HashMap::new(),
                    runnable: BTreeSet::new(),
                    events: BinaryHeap::new(),
                    finished: false,
                    poisoned: None,
                    stats: Vec::new(),
                    join_handles: Vec::new(),
                    obs: None,
                    cpu_slowdown: HashMap::new(),
                }),
                completion: Condvar::new(),
            }),
        }
    }

    /// Current virtual time. Callable from anywhere.
    pub fn now(&self) -> SimTime {
        self.shared.state.lock().now
    }

    /// Attaches the shared observability context. Thread spawns and
    /// retirements are recorded into it from then on (call before the
    /// workload starts for complete coverage).
    pub fn set_obs(&self, obs: Arc<Obs>) {
        self.shared.state.lock().obs = Some(obs);
    }

    /// The attached observability context, if any.
    pub fn obs(&self) -> Option<Arc<Obs>> {
        self.shared.state.lock().obs.clone()
    }

    /// Sets the straggler factor for `node`: every subsequent
    /// [`SimContext::sleep`] on that node takes `factor`× as long. A
    /// factor of 1.0 removes the slowdown. Deterministic: the scaling is
    /// pure integer-rounded arithmetic on the virtual clock.
    pub fn set_cpu_slowdown(&self, node: NodeId, factor: f64) {
        let mut st = self.shared.state.lock();
        if factor == 1.0 {
            st.cpu_slowdown.remove(&node);
        } else {
            st.cpu_slowdown.insert(node, factor.max(0.0));
        }
    }

    /// The current straggler factor for `node` (1.0 when healthy).
    pub fn cpu_slowdown(&self, node: NodeId) -> f64 {
        self.shared
            .state
            .lock()
            .cpu_slowdown
            .get(&node)
            .copied()
            .unwrap_or(1.0)
    }

    /// Spawns a simulated thread pinned to `node`, runnable at the current
    /// virtual time. Returns its id.
    ///
    /// May be called before [`Kernel::run`] or from inside another simulated
    /// thread.
    pub fn spawn<F>(&self, node: NodeId, name: &str, f: F) -> SimThreadId
    where
        F: FnOnce(SimContext) + Send + 'static,
    {
        let (tid, cv) = {
            let mut st = self.shared.state.lock();
            let tid = SimThreadId(st.next_tid);
            st.next_tid += 1;
            let cv = Arc::new(Condvar::new());
            let start_at = st.now;
            st.threads.insert(
                tid,
                Slot {
                    resume_at: Some(start_at),
                    cv: cv.clone(),
                    name: name.to_string(),
                    node,
                    spawned_at: start_at,
                    busy: SimDuration::ZERO,
                    idle: SimDuration::ZERO,
                },
            );
            let key = (st.now, tid);
            st.runnable.insert(key);
            if let Some(obs) = &st.obs {
                obs.recorder.name_track(node as u32, tid.track(), name);
            }
            (tid, cv)
        };

        let kernel = self.clone();
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                kernel.thread_main(tid, cv, node, f);
            })
            .expect("failed to spawn OS thread for simulated thread");
        self.shared.state.lock().join_handles.push(handle);
        tid
    }

    fn thread_main<F>(&self, tid: SimThreadId, cv: Arc<Condvar>, node: NodeId, f: F)
    where
        F: FnOnce(SimContext) + Send,
    {
        // Wait until the dispatcher hands control to this thread.
        {
            let mut st = self.shared.state.lock();
            while st.running != Some(tid) && st.poisoned.is_none() {
                cv.wait(&mut st);
            }
            if st.poisoned.is_some() {
                self.retire(tid, true);
                return;
            }
        }

        let ctx = SimContext {
            kernel: self.clone(),
            id: tid,
            node,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(move || f(ctx)));
        let panicked = result.is_err();
        if let Err(payload) = result {
            // `&*payload` unsizes to the payload itself; `&payload` would
            // wrap the Box and break the downcasts.
            let msg = payload_to_string(&*payload);
            let mut st = self.shared.state.lock();
            if st.poisoned.is_none() {
                st.poisoned = Some(format!("simulated thread panicked: {msg}"));
            }
            // Wake everything so blocked threads observe the poison and exit.
            for slot in st.threads.values() {
                slot.cv.notify_all();
            }
            self.shared.completion.notify_all();
        }
        self.retire(tid, panicked);
    }

    /// Removes a finished thread, records its stats and hands control to the
    /// next runnable entity.
    fn retire(&self, tid: SimThreadId, panicked: bool) {
        let mut st = self.shared.state.lock();
        if let Some(slot) = st.threads.remove(&tid) {
            if let Some(t) = slot.resume_at {
                st.runnable.remove(&(t, tid));
            }
            let finished_at = st.now;
            if let Some(obs) = &st.obs {
                let node = slot.node as u32;
                let labels = Labels::node(node);
                obs.metrics
                    .counter(names::KERNEL_BUSY_NS, labels)
                    .add(slot.busy.as_nanos());
                obs.metrics
                    .counter(names::KERNEL_IDLE_NS, labels)
                    .add(slot.idle.as_nanos());
                obs.metrics
                    .counter(names::KERNEL_THREADS_FINISHED, labels)
                    .inc();
                obs.recorder.span(
                    node,
                    tid.track(),
                    &slot.name,
                    slot.spawned_at.as_nanos(),
                    finished_at.as_nanos(),
                );
                obs.recorder.event(
                    node,
                    tid.track(),
                    finished_at.as_nanos(),
                    EventKind::ThreadFinished,
                    slot.busy.as_nanos(),
                );
            }
            st.stats.push(ThreadStats {
                name: slot.name,
                node: slot.node,
                busy: slot.busy,
                idle: slot.idle,
                finished_at,
            });
        }
        if st.running == Some(tid) {
            st.running = None;
        }
        if st.poisoned.is_some() || panicked {
            self.shared.completion.notify_all();
            return;
        }
        self.dispatch(st, None);
    }

    /// Schedules `action` to run at virtual time `at` (clamped to `now`).
    ///
    /// Actions run while no simulated thread executes; they may schedule
    /// further events and push to gates, but must not block.
    pub fn schedule<F>(&self, at: SimTime, action: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let mut st = self.shared.state.lock();
        let at = at.max(st.now);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.events.push(EventEntry {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` to run `delay` after the current virtual time.
    pub fn schedule_in<F>(&self, delay: SimDuration, action: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let now = self.now();
        self.schedule(now + delay, action);
    }

    /// Runs the simulation to completion: blocks the calling (host) thread
    /// until every simulated thread has finished and the event queue is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if any simulated thread panicked or a global deadlock was
    /// detected (every thread blocked with no pending event).
    pub fn run(&self) {
        {
            let st = self.shared.state.lock();
            self.dispatch(st, None);
        }
        let mut st = self.shared.state.lock();
        while !st.finished && st.poisoned.is_none() {
            self.shared.completion.wait(&mut st);
        }
        let poisoned = st.poisoned.clone();
        let handles = std::mem::take(&mut st.join_handles);
        drop(st);
        for h in handles {
            // Threads have either exited or are unwinding; joining is safe.
            let _ = h.join();
        }
        if let Some(msg) = poisoned {
            panic!("{msg}");
        }
    }

    /// Returns statistics for all threads that have finished so far.
    pub fn stats(&self) -> Vec<ThreadStats> {
        self.shared.state.lock().stats.clone()
    }

    /// Core scheduling loop. Processes due events inline; when the next
    /// runnable entity is a thread, transfers control to it.
    ///
    /// If `me` is `Some`, the caller is a simulated thread that has already
    /// recorded its own wakeup (or blocked state) and this call returns only
    /// once the caller is scheduled to run again.
    fn dispatch<'a>(&'a self, mut st: parking_lot::MutexGuard<'a, State>, me: Option<SimThreadId>) {
        // Scratch buffer for same-instant event batches; reused across loop
        // iterations so a long event cascade allocates once.
        let mut batch: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        loop {
            if st.poisoned.is_some() {
                drop(st);
                self.propagate_poison(me);
                return;
            }
            let next_event_at = st.events.peek().map(|e| e.at);
            let next_thread = st.runnable.iter().next().copied();

            match (next_event_at, next_thread) {
                (None, None) => {
                    if st.threads.is_empty() {
                        st.finished = true;
                        self.shared.completion.notify_all();
                        if me.is_some() {
                            // A thread with `me` set is blocked on a gate and
                            // nothing can ever wake it: that is a deadlock of
                            // one.
                            let msg = "deadlock: last runnable thread blocked forever".to_string();
                            st.poisoned = Some(msg.clone());
                            drop(st);
                            panic!("{msg}");
                        }
                        return;
                    }
                    // Threads exist but none is runnable and no event is
                    // pending: global deadlock.
                    let blocked: Vec<String> = st
                        .threads
                        .values()
                        .map(|s| format!("{} (node {})", s.name, s.node))
                        .collect();
                    let msg = format!(
                        "virtual-time deadlock at {:?}: {} thread(s) blocked with no pending \
                         events: [{}]",
                        st.now,
                        blocked.len(),
                        blocked.join(", ")
                    );
                    st.poisoned = Some(msg.clone());
                    for slot in st.threads.values() {
                        slot.cv.notify_all();
                    }
                    self.shared.completion.notify_all();
                    drop(st);
                    panic!("{msg}");
                }
                (Some(ev_at), thread) if thread.is_none_or(|(t, _)| ev_at <= t) => {
                    debug_assert!(ev_at >= st.now, "event scheduled in the past");
                    st.now = ev_at;
                    // Drain every event due at this instant in one lock
                    // cycle. BinaryHeap pop yields them in (at, seq) order,
                    // so the batch preserves schedule order; actions that
                    // schedule *new* events at the same instant get a higher
                    // seq and are picked up on the next loop iteration —
                    // identical semantics to popping one event per cycle,
                    // but one lock round-trip per instant instead of per
                    // event (the hot path at 512 nodes).
                    while let Some(e) = st.events.peek() {
                        if e.at != ev_at {
                            break;
                        }
                        let entry = st.events.pop().expect("peeked event must exist");
                        batch.push(entry.action);
                    }
                    drop(st);
                    for action in batch.drain(..) {
                        action();
                    }
                    st = self.shared.state.lock();
                }
                (_, Some((t, tid))) => {
                    st.runnable.remove(&(t, tid));
                    debug_assert!(t >= st.now, "thread scheduled in the past");
                    st.now = t;
                    st.running = Some(tid);
                    let cv = {
                        let slot = st
                            .threads
                            .get_mut(&tid)
                            .expect("runnable thread must exist");
                        slot.resume_at = None;
                        slot.cv.clone()
                    };
                    if me == Some(tid) {
                        return;
                    }
                    cv.notify_one();
                    if let Some(my_id) = me {
                        let my_cv = st
                            .threads
                            .get(&my_id)
                            .expect("calling thread must exist")
                            .cv
                            .clone();
                        while st.running != Some(my_id) && st.poisoned.is_none() {
                            my_cv.wait(&mut st);
                        }
                        if st.poisoned.is_some() {
                            drop(st);
                            self.propagate_poison(me);
                        }
                    }
                    return;
                }
                // `(Some(_), None)` with a failed guard cannot occur: the
                // guard is always true when no thread is runnable.
                _ => unreachable!("dispatch: inconsistent scheduler state"),
            }
        }
    }

    fn propagate_poison(&self, me: Option<SimThreadId>) {
        if me.is_some() {
            // Unwind through the simulated thread; its wrapper will retire it
            // without re-poisoning.
            panic!("simulation poisoned (another thread panicked or deadlock detected)");
        }
    }

    /// Marks the calling thread runnable again at `at` and yields to the
    /// scheduler. Returns when the thread is dispatched (virtual time == at,
    /// unless poisoned).
    fn yield_until(&self, me: SimThreadId, at: SimTime) {
        let mut st = self.shared.state.lock();
        debug_assert_eq!(st.running, Some(me), "yield_until from non-running thread");
        debug_assert!(at >= st.now);
        let slot = st.threads.get_mut(&me).expect("running thread must exist");
        slot.resume_at = Some(at);
        st.runnable.insert((at, me));
        st.running = None;
        self.dispatch(st, Some(me));
    }

    /// Blocks the calling thread with no wakeup time (a gate push must wake
    /// it). `deadline`, if given, acts as a timed wakeup.
    fn block_me(&self, me: SimThreadId, deadline: Option<SimTime>) {
        let mut st = self.shared.state.lock();
        debug_assert_eq!(st.running, Some(me), "block from non-running thread");
        let wait_start = st.now;
        let slot = st.threads.get_mut(&me).expect("running thread must exist");
        slot.resume_at = deadline;
        if let Some(d) = deadline {
            st.runnable.insert((d, me));
        }
        st.running = None;
        self.dispatch(st, Some(me));
        let mut st = self.shared.state.lock();
        let now = st.now;
        let slot = st.threads.get_mut(&me).expect("running thread must exist");
        slot.idle += now.duration_since(wait_start);
    }

    /// Makes a blocked thread runnable at `at` (or earlier if it already has
    /// an earlier wakeup). No-op for the currently running thread.
    fn wake(&self, st: &mut State, tid: SimThreadId, at: SimTime) {
        if st.running == Some(tid) {
            return;
        }
        if let Some(slot) = st.threads.get_mut(&tid) {
            match slot.resume_at {
                Some(existing) if existing <= at => {}
                Some(existing) => {
                    st.runnable.remove(&(existing, tid));
                    slot.resume_at = Some(at);
                    st.runnable.insert((at, tid));
                }
                None => {
                    slot.resume_at = Some(at);
                    st.runnable.insert((at, tid));
                }
            }
        }
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Per-thread handle passed to the closure given to [`Kernel::spawn`].
#[derive(Clone)]
pub struct SimContext {
    kernel: Kernel,
    id: SimThreadId,
    node: NodeId,
}

impl SimContext {
    /// The kernel this thread belongs to.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// This thread's id.
    pub fn id(&self) -> SimThreadId {
        self.id
    }

    /// The node this thread is pinned to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Advances this thread's clock by `d`, modelling CPU work. Other
    /// runnable entities with earlier timestamps execute in the meantime.
    pub fn sleep(&self, d: SimDuration) {
        if d == SimDuration::ZERO {
            return self.yield_now();
        }
        let d = {
            let mut st = self.kernel.shared.state.lock();
            // Straggler injection: CPU work on a slowed node stretches by
            // the node's factor (rounded to whole virtual nanoseconds).
            let d = match st.cpu_slowdown.get(&self.node) {
                Some(&factor) => {
                    SimDuration::from_nanos((d.as_nanos() as f64 * factor).round() as u64)
                }
                None => d,
            };
            let slot = st
                .threads
                .get_mut(&self.id)
                .expect("running thread must exist");
            slot.busy += d;
            d
        };
        let at = self.kernel.now() + d;
        self.kernel.yield_until(self.id, at);
    }

    /// Yields to any runnable entity scheduled at the current instant.
    pub fn yield_now(&self) {
        let at = self.kernel.now();
        self.kernel.yield_until(self.id, at);
    }
}

struct GateInner<T> {
    queue: Mutex<VecDeque<T>>,
    waiters: Mutex<VecDeque<SimThreadId>>,
    wake_latency: SimDuration,
}

/// A virtual-time MPMC channel: producers [`push`](Gate::push) from threads
/// or event actions; consumers block in virtual time until a value arrives.
///
/// Waiting consumes no virtual CPU (it is accounted as idle time), modelling
/// a blocked thread that is woken by an interrupt/doorbell after
/// `wake_latency`.
pub struct Gate<T> {
    kernel: Kernel,
    inner: Arc<GateInner<T>>,
}

impl<T> Clone for Gate<T> {
    fn clone(&self) -> Self {
        Gate {
            kernel: self.kernel.clone(),
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> Gate<T> {
    /// Creates a gate whose wakeups are delivered `wake_latency` after the
    /// push.
    pub fn new(kernel: &Kernel, wake_latency: SimDuration) -> Self {
        Gate {
            kernel: kernel.clone(),
            inner: Arc::new(GateInner {
                queue: Mutex::new(VecDeque::new()),
                waiters: Mutex::new(VecDeque::new()),
                wake_latency,
            }),
        }
    }

    /// Enqueues a value and wakes the longest-waiting receiver, if any.
    /// Callable from simulated threads and from event actions.
    pub fn push(&self, value: T) {
        let mut st = self.kernel.shared.state.lock();
        self.inner.queue.lock().push_back(value);
        let waiter = self.inner.waiters.lock().pop_front();
        if let Some(w) = waiter {
            let at = st.now + self.inner.wake_latency;
            self.kernel.wake(&mut st, w, at);
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Whether the gate currently holds no values.
    pub fn is_empty(&self) -> bool {
        self.inner.queue.lock().is_empty()
    }

    /// Pops a value if one is immediately available. Consumes no virtual
    /// time.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.queue.lock().pop_front()
    }

    /// Blocks in virtual time until a value is available.
    pub fn recv(&self, ctx: &SimContext) -> T {
        loop {
            {
                let _st = self.kernel.shared.state.lock();
                if let Some(v) = self.inner.queue.lock().pop_front() {
                    return v;
                }
                let mut waiters = self.inner.waiters.lock();
                if !waiters.contains(&ctx.id) {
                    waiters.push_back(ctx.id);
                }
            }
            self.kernel.block_me(ctx.id, None);
        }
    }

    /// Blocks in virtual time until a value is available or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, ctx: &SimContext, timeout: SimDuration) -> RecvTimeout<T> {
        let deadline = self.kernel.now() + timeout;
        loop {
            {
                let st = self.kernel.shared.state.lock();
                if let Some(v) = self.inner.queue.lock().pop_front() {
                    self.inner.waiters.lock().retain(|w| *w != ctx.id);
                    return RecvTimeout::Value(v);
                }
                if st.now >= deadline {
                    self.inner.waiters.lock().retain(|w| *w != ctx.id);
                    return RecvTimeout::TimedOut;
                }
                let mut waiters = self.inner.waiters.lock();
                if !waiters.contains(&ctx.id) {
                    waiters.push_back(ctx.id);
                }
            }
            self.kernel.block_me(ctx.id, Some(deadline));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn empty_kernel_finishes() {
        let kernel = Kernel::new();
        kernel.run();
        assert_eq!(kernel.now(), SimTime::ZERO);
    }

    #[test]
    fn single_thread_advances_clock() {
        let kernel = Kernel::new();
        kernel.spawn(0, "t", |sim| {
            sim.sleep(SimDuration::from_micros(3));
            sim.sleep(SimDuration::from_micros(4));
            assert_eq!(sim.now().as_nanos(), 7_000);
        });
        kernel.run();
        assert_eq!(kernel.now().as_nanos(), 7_000);
    }

    #[test]
    fn threads_interleave_in_time_order() {
        let kernel = Kernel::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, step) in [("a", 30u64), ("b", 20), ("c", 50)] {
            let order = order.clone();
            kernel.spawn(0, name, move |sim| {
                sim.sleep(SimDuration::from_nanos(step));
                order.lock().push((sim.now().as_nanos(), name));
            });
        }
        kernel.run();
        assert_eq!(
            *order.lock(),
            vec![(20, "b"), (30, "a"), (50, "c")],
            "threads must run in virtual-time order"
        );
    }

    #[test]
    fn equal_times_break_ties_by_spawn_order() {
        let kernel = Kernel::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for name in ["first", "second", "third"] {
            let order = order.clone();
            kernel.spawn(0, name, move |sim| {
                sim.sleep(SimDuration::from_nanos(10));
                order.lock().push(name);
            });
        }
        kernel.run();
        assert_eq!(*order.lock(), vec!["first", "second", "third"]);
    }

    #[test]
    fn events_run_before_threads_at_same_time() {
        let kernel = Kernel::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = order.clone();
        kernel.schedule(SimTime::from_nanos(10), move || o1.lock().push("event"));
        let o2 = order.clone();
        kernel.spawn(0, "t", move |sim| {
            sim.sleep(SimDuration::from_nanos(10));
            o2.lock().push("thread");
        });
        kernel.run();
        assert_eq!(*order.lock(), vec!["event", "thread"]);
    }

    #[test]
    fn events_chain() {
        let kernel = Kernel::new();
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let k = kernel.clone();
        kernel.schedule(SimTime::from_nanos(5), move || {
            c.fetch_add(1, Ordering::SeqCst);
            let c2 = c.clone();
            k.schedule(SimTime::from_nanos(9), move || {
                c2.fetch_add(10, Ordering::SeqCst);
            });
        });
        kernel.run();
        assert_eq!(count.load(Ordering::SeqCst), 11);
        assert_eq!(kernel.now().as_nanos(), 9);
    }

    #[test]
    fn gate_delivers_value_with_latency() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::from_nanos(100));
        let g = gate.clone();
        kernel.spawn(0, "consumer", move |sim| {
            let v = g.recv(&sim);
            assert_eq!(v, 42);
            // Pushed at t=500 by the event below; wake latency 100.
            assert_eq!(sim.now().as_nanos(), 600);
        });
        let g2 = gate.clone();
        kernel.schedule(SimTime::from_nanos(500), move || g2.push(42));
        kernel.run();
    }

    #[test]
    fn gate_value_available_before_recv_is_instant() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::from_nanos(100));
        gate.push(7);
        let g = gate.clone();
        kernel.spawn(0, "consumer", move |sim| {
            sim.sleep(SimDuration::from_nanos(10));
            let v = g.recv(&sim);
            assert_eq!(v, 7);
            assert_eq!(sim.now().as_nanos(), 10, "no wait when a value is queued");
        });
        kernel.run();
    }

    #[test]
    fn gate_recv_timeout_times_out() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::ZERO);
        let g = gate.clone();
        kernel.spawn(0, "consumer", move |sim| {
            let r = g.recv_timeout(&sim, SimDuration::from_micros(5));
            assert_eq!(r, RecvTimeout::TimedOut);
            assert_eq!(sim.now().as_nanos(), 5_000);
        });
        kernel.run();
    }

    #[test]
    fn gate_recv_timeout_receives_early_push() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::ZERO);
        let g = gate.clone();
        kernel.spawn(0, "consumer", move |sim| {
            let r = g.recv_timeout(&sim, SimDuration::from_micros(5));
            assert_eq!(r, RecvTimeout::Value(9));
            assert_eq!(sim.now().as_nanos(), 1_000);
        });
        let g2 = gate.clone();
        kernel.schedule(SimTime::from_nanos(1_000), move || g2.push(9));
        kernel.run();
    }

    #[test]
    fn producer_consumer_pipeline() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::from_nanos(10));
        let total = Arc::new(AtomicU64::new(0));
        let g = gate.clone();
        kernel.spawn(0, "producer", move |sim| {
            for i in 0..100 {
                sim.sleep(SimDuration::from_nanos(50));
                g.push(i);
            }
        });
        let g2 = gate.clone();
        let t = total.clone();
        kernel.spawn(1, "consumer", move |sim| {
            for _ in 0..100 {
                let v = g2.recv(&sim);
                t.fetch_add(v, Ordering::SeqCst);
            }
        });
        kernel.run();
        assert_eq!(total.load(Ordering::SeqCst), 99 * 100 / 2);
    }

    #[test]
    fn multiple_consumers_share_work() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::ZERO);
        let seen = Arc::new(AtomicU64::new(0));
        for i in 0..4 {
            let g = gate.clone();
            let s = seen.clone();
            kernel.spawn(0, &format!("c{i}"), move |sim| {
                for _ in 0..25 {
                    g.recv(&sim);
                    s.fetch_add(1, Ordering::SeqCst);
                    sim.sleep(SimDuration::from_nanos(5));
                }
            });
        }
        let g = gate.clone();
        kernel.spawn(1, "producer", move |sim| {
            for _ in 0..100 {
                g.push(1);
                sim.sleep(SimDuration::from_nanos(1));
            }
        });
        kernel.run();
        assert_eq!(seen.load(Ordering::SeqCst), 100);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::ZERO);
        kernel.spawn(0, "stuck", move |sim| {
            let _ = gate.recv(&sim); // Never pushed.
        });
        kernel.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn thread_panic_propagates_to_run() {
        let kernel = Kernel::new();
        kernel.spawn(0, "bad", |_sim| panic!("boom"));
        kernel.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panic_releases_blocked_threads() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::ZERO);
        kernel.spawn(0, "stuck", move |sim| {
            let _ = gate.recv(&sim);
        });
        kernel.spawn(0, "bad", |sim| {
            sim.sleep(SimDuration::from_nanos(100));
            panic!("boom");
        });
        kernel.run();
    }

    #[test]
    fn spawn_from_sim_thread() {
        let kernel = Kernel::new();
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        kernel.spawn(0, "parent", move |sim| {
            sim.sleep(SimDuration::from_nanos(7));
            let d2 = d.clone();
            sim.kernel().spawn(0, "child", move |csim| {
                assert_eq!(csim.now().as_nanos(), 7, "child starts at spawn time");
                csim.sleep(SimDuration::from_nanos(3));
                d2.fetch_add(1, Ordering::SeqCst);
            });
            sim.sleep(SimDuration::from_nanos(100));
        });
        kernel.run();
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(kernel.now().as_nanos(), 107);
    }

    #[test]
    fn busy_and_idle_accounting() {
        let kernel = Kernel::new();
        let gate: Gate<u64> = Gate::new(&kernel, SimDuration::ZERO);
        let g = gate.clone();
        kernel.spawn(0, "worker", move |sim| {
            sim.sleep(SimDuration::from_nanos(300)); // busy
            let _ = g.recv(&sim); // idle until t=1000
        });
        let g2 = gate.clone();
        kernel.schedule(SimTime::from_nanos(1_000), move || g2.push(1));
        kernel.run();
        let stats = kernel.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].busy.as_nanos(), 300);
        assert_eq!(stats[0].idle.as_nanos(), 700);
        assert_eq!(stats[0].finished_at.as_nanos(), 1_000);
    }

    #[test]
    fn same_instant_events_fire_in_schedule_order() {
        // Events are keyed (at, seq): registration order at a given instant
        // is the tie-break, regardless of the order timestamps were mixed in.
        let kernel = Kernel::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, at) in [("e1", 10u64), ("e2", 5), ("e3", 10), ("e4", 10)] {
            let o = order.clone();
            kernel.schedule(SimTime::from_nanos(at), move || o.lock().push(name));
        }
        kernel.run();
        assert_eq!(*order.lock(), vec!["e2", "e1", "e3", "e4"]);
    }

    #[test]
    fn event_scheduled_at_same_instant_runs_after_existing_batch() {
        // An action that schedules a new event at the *current* instant gets
        // a higher seq, so it runs after every already-scheduled event at
        // that instant — even though the batch was drained in one sweep.
        let kernel = Kernel::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = order.clone();
        let k = kernel.clone();
        kernel.schedule(SimTime::from_nanos(10), move || {
            o1.lock().push("first");
            let o = o1.clone();
            k.schedule(SimTime::from_nanos(10), move || o.lock().push("late"));
        });
        let o2 = order.clone();
        kernel.schedule(SimTime::from_nanos(10), move || o2.lock().push("second"));
        kernel.run();
        assert_eq!(*order.lock(), vec!["first", "second", "late"]);
        assert_eq!(kernel.now().as_nanos(), 10);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> Vec<(u64, String)> {
            let kernel = Kernel::new();
            let log = Arc::new(Mutex::new(Vec::new()));
            let gate: Gate<u64> = Gate::new(&kernel, SimDuration::from_nanos(3));
            for i in 0..8u64 {
                let g = gate.clone();
                let log = log.clone();
                kernel.spawn((i % 4) as usize, &format!("w{i}"), move |sim| {
                    for k in 0..20u64 {
                        sim.sleep(SimDuration::from_nanos(7 + (i * 13 + k) % 11));
                        g.push(i * 100 + k);
                        if let Some(v) = g.try_recv() {
                            log.lock().push((sim.now().as_nanos(), format!("w{i}:{v}")));
                        }
                    }
                });
            }
            kernel.run();
            let v = log.lock().clone();
            v
        }
        assert_eq!(run_once(), run_once());
    }
}
