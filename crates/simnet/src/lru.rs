//! A fixed-capacity LRU set used to model the NIC's Queue Pair context
//! cache.
//!
//! Real RDMA NICs cache Queue Pair state in on-chip memory; when the working
//! set of QPs exceeds the cache, every work request pays a PCIe round-trip to
//! fetch the context from host memory, degrading throughput by up to 5×
//! (Dragojević et al., NSDI '14; Kalia et al., ATC '16). [`LruSet::touch`]
//! returns whether the access hit, so callers can charge the miss penalty.

use std::collections::HashMap;
use std::hash::Hash;

/// A fixed-capacity set with least-recently-used eviction.
///
/// Implemented as a doubly-linked list over a slab, with a hash index; all
/// operations are O(1).
#[derive(Debug)]
pub struct LruSet<K: Eq + Hash + Clone> {
    capacity: usize,
    index: HashMap<K, usize>,
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    head: Option<usize>, // Most recently used.
    tail: Option<usize>, // Least recently used.
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Node<K> {
    key: K,
    prev: Option<usize>,
    next: Option<usize>,
}

impl<K: Eq + Hash + Clone> LruSet<K> {
    /// Creates an LRU set holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruSet capacity must be positive");
        LruSet {
            capacity,
            index: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: None,
            tail: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `key`: returns `true` on a cache hit. On a miss the key is
    /// inserted, evicting the least-recently-used entry if the set is full.
    pub fn touch(&mut self, key: K) -> bool {
        if let Some(&idx) = self.index.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.index.len() == self.capacity {
            let lru = self.tail.expect("full cache must have a tail");
            self.unlink(lru);
            let old = self.nodes[lru].key.clone();
            self.index.remove(&old);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i].key = key.clone();
                i
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    prev: None,
                    next: None,
                });
                self.nodes.len() - 1
            }
        };
        self.index.insert(key, idx);
        self.push_front(idx);
        false
    }

    /// Whether `key` is currently cached. Does not update recency.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total hits and misses since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[idx].prev = None;
        self.nodes[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = None;
        self.nodes[idx].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut lru = LruSet::new(4);
        assert!(!lru.touch(1));
        assert!(lru.touch(1));
        assert_eq!(lru.hit_stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruSet::new(2);
        lru.touch(1);
        lru.touch(2);
        lru.touch(1); // 2 is now LRU.
        lru.touch(3); // Evicts 2.
        assert!(lru.contains(&1));
        assert!(!lru.contains(&2));
        assert!(lru.contains(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut lru = LruSet::new(8);
        for k in 0..8 {
            lru.touch(k);
        }
        for round in 0..10 {
            for k in 0..8 {
                assert!(lru.touch(k), "round {round} key {k} should hit");
            }
        }
        assert_eq!(lru.hit_stats(), (80, 8));
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut lru = LruSet::new(4);
        // Sequential scan over 8 keys with capacity 4: classic LRU thrash,
        // every access misses.
        for _ in 0..5 {
            for k in 0..8 {
                assert!(!lru.touch(k));
            }
        }
        assert_eq!(lru.hit_stats(), (0, 40));
    }

    #[test]
    fn reuses_freed_slots() {
        let mut lru = LruSet::new(2);
        for k in 0..100 {
            lru.touch(k);
        }
        assert_eq!(lru.len(), 2);
        assert!(lru.nodes.len() <= 3, "slab must not grow unboundedly");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruSet::<u32>::new(0);
    }
}
