//! The NIC model: per-work-request processing costs and the Queue Pair
//! context cache.
//!
//! Each node owns one [`NicModel`]. Every work request the node issues or
//! receives occupies the NIC's processing pipeline (a FIFO [`Resource`]
//! bounding the message rate) and touches the context of the Queue Pair it
//! belongs to. Contexts live in a fixed-size LRU cache; a miss pays a PCIe
//! round trip. This is the mechanism behind the paper's Figure 11 (effect of
//! many Queue Pairs) and the FDR-vs-EDR scaling difference in Figure 10:
//! the FDR-generation NIC caches far fewer QP contexts, so the Θ(n)-QP
//! algorithms degrade as the cluster grows while the Θ(1)/Θ(t)-QP
//! Unreliable Datagram designs do not.

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_obs::{names, Counter, EventKind, Labels, Obs, HW_TRACK};

use crate::lru::LruSet;
use crate::profile::DeviceProfile;
use crate::resource::Resource;
use crate::time::{SimDuration, SimTime};

/// The kind of work request being processed, determining its base cost.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum WrKind {
    /// A Send on a Reliable Connection QP.
    SendRc,
    /// A Send on an Unreliable Datagram QP.
    SendUd,
    /// An RDMA Read request (issuing side).
    Read,
    /// An RDMA Write request (issuing side).
    Write,
    /// Matching an inbound message to a posted Receive.
    RecvMatch,
    /// Serving an inbound RDMA Read/Write at the passive side (no CPU, but
    /// NIC pipeline occupancy and a QP-context touch).
    RemoteDma,
}

/// Legacy snapshot of one NIC's counters.
///
/// Since the unified observability layer landed this is a *view* built
/// from the shared [`rshuffle_obs::MetricsRegistry`]; the NIC no longer
/// keeps private counters. Prefer reading the registry directly (series
/// `nic.work_requests` / `nic.qp_cache_hits` / `nic.qp_cache_misses`
/// labelled by node).
#[derive(Debug, Clone, Default)]
pub struct NicStats {
    /// Work requests processed, by rough category.
    pub work_requests: u64,
    /// QP context cache hits.
    pub qp_cache_hits: u64,
    /// QP context cache misses.
    pub qp_cache_misses: u64,
}

/// Cached registry handles so the per-work-request hot path is three
/// relaxed atomic increments, no registry lookup.
struct NicObs {
    obs: Arc<Obs>,
    node: u32,
    work_requests: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
}

impl NicObs {
    fn new(obs: Arc<Obs>, node: u32) -> Self {
        let labels = Labels::node(node);
        NicObs {
            work_requests: obs.metrics.counter(names::NIC_WORK_REQUESTS, labels),
            cache_hits: obs.metrics.counter(names::NIC_QP_CACHE_HITS, labels),
            cache_misses: obs.metrics.counter(names::NIC_QP_CACHE_MISSES, labels),
            obs,
            node,
        }
    }
}

/// Timing model of one node's RDMA NIC.
pub struct NicModel {
    pipe: Mutex<Resource>,
    cache: Mutex<LruSet<u64>>,
    obs: Mutex<NicObs>,
    wr_nic: SimDuration,
    wr_recv_match: SimDuration,
    qp_cache_miss: SimDuration,
}

impl NicModel {
    /// Creates a NIC with the cost constants of `profile`, reporting
    /// into a private observability context (see
    /// [`NicModel::with_obs`] for the shared-cluster form).
    pub fn new(profile: &DeviceProfile) -> Self {
        Self::with_obs(profile, Obs::new(), 0)
    }

    /// Creates a NIC that records into `obs` as node `node`.
    pub fn with_obs(profile: &DeviceProfile, obs: Arc<Obs>, node: u32) -> Self {
        NicModel {
            pipe: Mutex::new(Resource::new()),
            cache: Mutex::new(LruSet::new(profile.qp_cache_entries)),
            obs: Mutex::new(NicObs::new(obs, node)),
            wr_nic: profile.wr_nic,
            wr_recv_match: profile.wr_recv_match,
            qp_cache_miss: profile.qp_cache_miss,
        }
    }

    /// Processes a work request on QP context `qp_ctx` no earlier than `at`.
    /// Returns the time the NIC finishes its local processing (pipeline
    /// occupancy plus any context-cache miss penalty).
    pub fn process(&self, at: SimTime, qp_ctx: u64, kind: WrKind) -> SimTime {
        let base = match kind {
            WrKind::SendRc | WrKind::SendUd | WrKind::Read | WrKind::Write | WrKind::RemoteDma => {
                self.wr_nic
            }
            WrKind::RecvMatch => self.wr_recv_match,
        };
        let hit = self.cache.lock().touch(qp_ctx);
        let cost = if hit { base } else { base + self.qp_cache_miss };
        {
            let o = self.obs.lock();
            o.work_requests.inc();
            if hit {
                o.cache_hits.inc();
            } else {
                o.cache_misses.inc();
                // The thrash signal behind Figure 11: each miss is a PCIe
                // round trip fetching the QP context from host memory.
                o.obs.recorder.event(
                    o.node,
                    HW_TRACK,
                    at.as_nanos(),
                    EventKind::QpCacheMiss,
                    qp_ctx,
                );
            }
        }
        self.pipe.lock().reserve(at, cost).end
    }

    /// Snapshot of the NIC counters (view over the unified registry).
    pub fn stats(&self) -> NicStats {
        let o = self.obs.lock();
        NicStats {
            work_requests: o.work_requests.get(),
            qp_cache_hits: o.cache_hits.get(),
            qp_cache_misses: o.cache_misses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> NicModel {
        NicModel::new(&DeviceProfile::fdr())
    }

    #[test]
    fn cached_qp_costs_base_time() {
        let n = nic();
        let p = DeviceProfile::fdr();
        let t1 = n.process(SimTime::ZERO, 7, WrKind::SendRc); // Miss (cold).
        let t2 = n.process(t1, 7, WrKind::SendRc); // Hit.
        assert_eq!((t2 - t1).as_nanos(), p.wr_nic.as_nanos());
        assert_eq!(t1.as_nanos(), (p.wr_nic + p.qp_cache_miss).as_nanos());
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let p = DeviceProfile::fdr();
        let n = nic();
        let qps = (p.qp_cache_entries * 2) as u64;
        // Round-robin over 2× the cache capacity: every touch misses.
        let mut t = SimTime::ZERO;
        for i in 0..qps * 3 {
            t = n.process(t, i % qps, WrKind::SendRc);
        }
        let s = n.stats();
        assert_eq!(s.qp_cache_hits, 0, "LRU thrash must never hit");
        assert_eq!(s.qp_cache_misses, qps * 3);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let n = nic();
        let mut t = SimTime::ZERO;
        for round in 0..10u64 {
            for qp in 0..8u64 {
                t = n.process(t, qp, WrKind::SendRc);
                let _ = round;
            }
        }
        let s = n.stats();
        assert_eq!(s.qp_cache_misses, 8, "only cold misses");
        assert_eq!(s.qp_cache_hits, 72);
    }

    #[test]
    fn pipeline_serializes_requests() {
        let n = nic();
        let p = DeviceProfile::fdr();
        // Warm the QP context first so only pipeline occupancy remains.
        let warm = n.process(SimTime::ZERO, 1, WrKind::RecvMatch);
        // Two requests at the same instant: the second queues.
        let t1 = n.process(warm, 1, WrKind::RecvMatch);
        let t2 = n.process(warm, 1, WrKind::RecvMatch);
        assert_eq!((t1 - warm).as_nanos(), p.wr_recv_match.as_nanos());
        assert_eq!((t2 - warm).as_nanos(), p.wr_recv_match.as_nanos() * 2);
    }

    #[test]
    fn edr_nic_absorbs_many_qps() {
        // The EDR profile must cache the full working set of the largest MQ
        // configuration in the paper: 16 nodes × 14 threads × 2 directions.
        let p = DeviceProfile::edr();
        assert!(p.qp_cache_entries >= 16 * 14 * 2);
        // While the FDR profile must NOT absorb even the single-endpoint MQ
        // working set at 16 nodes (2 × 16 QPs), so SEMQ/* degrade at scale.
        let f = DeviceProfile::fdr();
        assert!(f.qp_cache_entries < 2 * 16);
    }
}
