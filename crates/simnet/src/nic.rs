//! The NIC model: per-work-request processing costs and the Queue Pair
//! context cache.
//!
//! Each node owns one [`NicModel`]. Every work request the node issues or
//! receives occupies the NIC's processing pipeline (a FIFO [`Resource`]
//! bounding the message rate) and touches the context of the Queue Pair it
//! belongs to. Contexts live in a fixed-size LRU cache; a miss pays a PCIe
//! round trip. This is the mechanism behind the paper's Figure 11 (effect of
//! many Queue Pairs) and the FDR-vs-EDR scaling difference in Figure 10:
//! the FDR-generation NIC caches far fewer QP contexts, so the Θ(n)-QP
//! algorithms degrade as the cluster grows while the Θ(1)/Θ(t)-QP
//! Unreliable Datagram designs do not.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_obs::{names, Counter, EventKind, Labels, Obs, HW_TRACK};

use crate::lru::LruSet;
use crate::profile::DeviceProfile;
use crate::resource::Reservation;
use crate::time::{SimDuration, SimTime};

/// Identity of a bandwidth-sharing flow (one concurrent query / exchange).
///
/// Flows exist so that co-running queries share the NIC pipeline and the
/// fabric ports by *configured weight* instead of by unspecified FIFO
/// interleaving. [`FlowId::NONE`] marks untagged traffic, which always takes
/// the plain FIFO path — byte-identical to the pre-flow simulator.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Untagged traffic: never paced, never accounted to a flow.
    pub const NONE: FlowId = FlowId(u32::MAX);

    /// Whether this id names a real flow (anything but [`FlowId::NONE`]).
    pub fn is_tagged(self) -> bool {
        self != FlowId::NONE
    }
}

/// Cluster-wide registry of flow weights, shared by every [`NicModel`]
/// pipeline and every fabric port.
///
/// A flow with no registered weight — or [`FlowId::NONE`] — is treated as
/// untagged: its reservations take the plain FIFO path. Registering weights
/// is what switches a [`FairResource`] into weighted-fair mode, so a cluster
/// that never registers any weight is byte-identical to one without flows.
#[derive(Debug, Default)]
pub struct FlowTable {
    weights: Mutex<BTreeMap<u32, u64>>,
}

impl FlowTable {
    /// Creates an empty table (all traffic untagged).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or updates) `flow`'s weight. Zero weights are clamped to 1.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is [`FlowId::NONE`].
    pub fn set_weight(&self, flow: FlowId, weight: u64) {
        assert!(flow.is_tagged(), "cannot weight the untagged flow");
        self.weights.lock().insert(flow.0, weight.max(1));
    }

    /// Removes `flow` from the table; its future reservations are untagged.
    pub fn clear_weight(&self, flow: FlowId) {
        self.weights.lock().remove(&flow.0);
    }

    /// `(weight, total_weight)` for `flow`, or `None` if the flow is
    /// untagged / unregistered (plain FIFO path).
    pub fn share(&self, flow: FlowId) -> Option<(u64, u64)> {
        if !flow.is_tagged() {
            return None;
        }
        let weights = self.weights.lock();
        let weight = *weights.get(&flow.0)?;
        let total: u64 = weights.values().sum();
        Some((weight, total))
    }

    /// Whether no weights are registered at all.
    pub fn is_empty(&self) -> bool {
        self.weights.lock().is_empty()
    }
}

/// Bound on remembered donation gaps; the oldest gap is dropped beyond this.
const MAX_GAPS: usize = 32;

/// Per-flow pacing and accounting state inside a [`FairResource`].
#[derive(Debug, Default, Clone, Copy)]
struct FlowLedger {
    /// The flow's virtual-clock entitlement: the earliest instant its next
    /// reservation may start while the resource is contended.
    fair_next: SimTime,
    /// When the flow's latest reservation ends. Together with
    /// `fair_next` this is the activity marker: a flow contends while
    /// its virtual clock is ahead of the current arrival **or** it is
    /// still being served. An under-share backlogged flow has a frozen
    /// clock in the past — `last_end` is what keeps its rivals paced.
    last_end: SimTime,
    /// Total occupancy this flow has been granted, ever.
    busy: SimDuration,
}

/// A FIFO-serialized resource with optional weighted-fair pacing.
///
/// Untagged reservations ([`FairResource::reserve`], or a flow with no
/// registered weight) behave exactly like [`crate::Resource`]: the eager
/// FIFO ledger commits `start = max(at, free_at)` immediately. Runs that
/// never register a weight are therefore byte-identical to the plain
/// resource — the property the scheduler's trace-identity test pins.
///
/// Tagged reservations implement an eager approximation of start-time fair
/// queueing. Each flow carries a virtual clock `fair_next` advanced by
/// `duration × total_weight / weight` per reservation, so a flow at twice
/// the weight advances half as fast and is entitled to twice the bandwidth.
/// A flow ahead of its entitlement is *paced*: its reservation is placed at
/// `fair_next` and the skipped interval is donated as a gap that under-share
/// flows back-fill. Three guards keep the policy work-conserving:
///
/// * pacing applies only while **contended** — some other flow has reserved
///   since this flow's last reservation. A solo flow runs at line rate no
///   matter what weights idle flows hold.
/// * `fair_next` is capped at `free_at + advance`, so a flow can never be
///   deferred more than one weighted quantum past the backlog front (no
///   starvation).
/// * when the resource is idle at arrival (`at ≥ free_at`) the reservation
///   is granted immediately.
#[derive(Debug, Default)]
pub struct FairResource {
    free_at: SimTime,
    busy_total: SimDuration,
    /// Donated idle intervals `(from, to)`, sorted by start time. Pacing
    /// gaps always open at the current backlog front, so appends keep the
    /// list sorted; splits from back-fills re-insert in place.
    gaps: Vec<(SimTime, SimTime)>,
    flows: BTreeMap<u32, FlowLedger>,
}

impl FairResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain FIFO reservation — identical arithmetic to
    /// [`crate::Resource::reserve`].
    pub fn reserve(&mut self, at: SimTime, duration: SimDuration) -> Reservation {
        let start = at.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        self.busy_total += duration;
        Reservation { start, end }
    }

    /// Reserves `duration` for `flow`, pacing it to its weighted share of
    /// the resource when `table` registers a weight for it (plain FIFO
    /// otherwise).
    pub fn reserve_flow(
        &mut self,
        at: SimTime,
        duration: SimDuration,
        flow: FlowId,
        table: &FlowTable,
    ) -> Reservation {
        let Some((weight, total)) = table.share(flow) else {
            return self.reserve(at, duration);
        };
        let ledger = self.flows.get(&flow.0).copied().unwrap_or_default();
        // Contended iff some other flow is still "active": its virtual
        // clock has not fallen behind this arrival, or it is still being
        // served. Idle flows freeze their clock, so they stop contending
        // once real time passes both markers.
        let contended = self
            .flows
            .iter()
            .any(|(&id, l)| id != flow.0 && (l.fair_next >= at || l.last_end >= at));
        // One weighted quantum: how far this reservation advances the
        // flow's virtual clock. Integer-only so every platform agrees.
        let adv = SimDuration::from_nanos(
            ((duration.as_nanos() as u128 * total as u128) / weight as u128)
                .min(u64::MAX as u128) as u64,
        );
        let start;
        if !contended {
            // No co-runner since our last reservation: plain FIFO —
            // idle resources grant immediately (work conserving) and
            // this path is bit-identical to [`Self::reserve`].
            start = at.max(self.free_at);
            self.free_at = start + duration;
        } else {
            let earliest = at.max(ledger.fair_next);
            if earliest > self.free_at {
                // Over its share: defer to the entitlement and donate
                // the skipped interval to under-share flows. This
                // applies even when the resource is idle at arrival —
                // a backlogged flow that re-arrives exactly at the
                // FIFO tail must not dodge its pacing, or shares track
                // quantum size instead of weight. Donation starts at
                // the arrival: the kernel dispatches in timestamp
                // order, so no later reservation can start before it.
                self.push_gap(self.free_at.max(at), earliest);
                start = earliest;
                self.free_at = start + duration;
            } else if let Some(s) = self.take_gap(earliest, duration) {
                // Under its share: claim a previously donated interval.
                start = s;
            } else {
                start = at.max(self.free_at);
                self.free_at = start + duration;
            }
        }
        let end = start + duration;
        let fair_next = if contended {
            // Arrival-based virtual clock (not start-based: the flow's
            // entitlement must not be penalized for queueing delay), with
            // the debt cap that bounds deferral to one quantum past the
            // backlog front.
            (ledger.fair_next.max(at) + adv).min(self.free_at + adv)
        } else {
            // Uncontended stretches accrue neither credit nor debt.
            self.free_at
        };
        let entry = self.flows.entry(flow.0).or_default();
        entry.fair_next = fair_next;
        entry.last_end = entry.last_end.max(end);
        entry.busy += duration;
        self.busy_total += duration;
        Reservation { start, end }
    }

    fn push_gap(&mut self, from: SimTime, to: SimTime) {
        if to <= from {
            return;
        }
        self.gaps.push((from, to));
        if self.gaps.len() > MAX_GAPS {
            self.gaps.remove(0);
        }
    }

    /// Claims the earliest `duration`-sized slice of a donated gap that
    /// starts at or after `earliest`, splitting the gap around it.
    fn take_gap(&mut self, earliest: SimTime, duration: SimDuration) -> Option<SimTime> {
        for i in 0..self.gaps.len() {
            let (gs, ge) = self.gaps[i];
            let s = gs.max(earliest);
            if s + duration <= ge {
                self.gaps.remove(i);
                let mut j = i;
                if s > gs {
                    self.gaps.insert(j, (gs, s));
                    j += 1;
                }
                if s + duration < ge {
                    self.gaps.insert(j, (s + duration, ge));
                }
                return Some(s);
            }
        }
        None
    }

    /// The earliest time a new FIFO reservation could start.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time the resource has been reserved for, ever.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Total occupancy granted to `flow`, ever (zero for untagged flows —
    /// plain reservations are not attributed).
    pub fn busy_for(&self, flow: FlowId) -> SimDuration {
        self.flows
            .get(&flow.0)
            .map(|l| l.busy)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Utilization of the resource over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total.as_secs_f64() / horizon.as_secs_f64()
    }
}

/// The kind of work request being processed, determining its base cost.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum WrKind {
    /// A Send on a Reliable Connection QP.
    SendRc,
    /// A Send on an Unreliable Datagram QP.
    SendUd,
    /// An RDMA Read request (issuing side).
    Read,
    /// An RDMA Write request (issuing side).
    Write,
    /// Matching an inbound message to a posted Receive.
    RecvMatch,
    /// Serving an inbound RDMA Read/Write at the passive side (no CPU, but
    /// NIC pipeline occupancy and a QP-context touch).
    RemoteDma,
}

/// Legacy snapshot of one NIC's counters.
///
/// Since the unified observability layer landed this is a *view* built
/// from the shared [`rshuffle_obs::MetricsRegistry`]; the NIC no longer
/// keeps private counters. Prefer reading the registry directly (series
/// `nic.work_requests` / `nic.qp_cache_hits` / `nic.qp_cache_misses`
/// labelled by node).
#[derive(Debug, Clone, Default)]
pub struct NicStats {
    /// Work requests processed, by rough category.
    pub work_requests: u64,
    /// QP context cache hits.
    pub qp_cache_hits: u64,
    /// QP context cache misses.
    pub qp_cache_misses: u64,
}

/// Cached registry handles so the per-work-request hot path is three
/// relaxed atomic increments, no registry lookup.
struct NicObs {
    obs: Arc<Obs>,
    node: u32,
    work_requests: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
}

impl NicObs {
    fn new(obs: Arc<Obs>, node: u32) -> Self {
        let labels = Labels::node(node);
        NicObs {
            work_requests: obs.metrics.counter(names::NIC_WORK_REQUESTS, labels),
            cache_hits: obs.metrics.counter(names::NIC_QP_CACHE_HITS, labels),
            cache_misses: obs.metrics.counter(names::NIC_QP_CACHE_MISSES, labels),
            obs,
            node,
        }
    }
}

/// Timing model of one node's RDMA NIC.
pub struct NicModel {
    pipe: Mutex<FairResource>,
    flows: Arc<FlowTable>,
    cache: Mutex<LruSet<u64>>,
    obs: Mutex<NicObs>,
    wr_nic: SimDuration,
    wr_recv_match: SimDuration,
    qp_cache_miss: SimDuration,
    /// Doorbell coalescing (see [`DeviceProfile::doorbell_window`]): the
    /// arrival time of the last *sender-side* work request per QP context.
    /// Lookup/insert only — iteration order is never observed, so the map
    /// stays deterministic.
    doorbell: Mutex<HashMap<u64, SimTime>>,
    doorbell_window: SimDuration,
    wr_nic_batched: SimDuration,
}

impl NicModel {
    /// Creates a NIC with the cost constants of `profile`, reporting
    /// into a private observability context (see
    /// [`NicModel::with_obs`] for the shared-cluster form).
    pub fn new(profile: &DeviceProfile) -> Self {
        Self::with_obs(profile, Obs::new(), 0)
    }

    /// Creates a NIC that records into `obs` as node `node`, with a
    /// private (empty) flow table.
    pub fn with_obs(profile: &DeviceProfile, obs: Arc<Obs>, node: u32) -> Self {
        Self::with_flows(profile, obs, node, Arc::new(FlowTable::new()))
    }

    /// Creates a NIC that records into `obs` as node `node` and arbitrates
    /// its pipeline across the cluster-shared `flows` weights.
    pub fn with_flows(
        profile: &DeviceProfile,
        obs: Arc<Obs>,
        node: u32,
        flows: Arc<FlowTable>,
    ) -> Self {
        NicModel {
            pipe: Mutex::new(FairResource::new()),
            flows,
            cache: Mutex::new(LruSet::new(profile.qp_cache_entries)),
            obs: Mutex::new(NicObs::new(obs, node)),
            wr_nic: profile.wr_nic,
            wr_recv_match: profile.wr_recv_match,
            qp_cache_miss: profile.qp_cache_miss,
            doorbell: Mutex::new(HashMap::new()),
            doorbell_window: profile.doorbell_window,
            wr_nic_batched: profile.wr_nic_batched,
        }
    }

    /// Processes an untagged work request on QP context `qp_ctx` no earlier
    /// than `at` (see [`NicModel::process_flow`]).
    pub fn process(&self, at: SimTime, qp_ctx: u64, kind: WrKind) -> SimTime {
        self.process_flow(at, qp_ctx, kind, FlowId::NONE)
    }

    /// Processes a work request belonging to `flow` on QP context `qp_ctx`
    /// no earlier than `at`. Returns the time the NIC finishes its local
    /// processing (pipeline occupancy plus any context-cache miss penalty).
    /// The pipeline is weighted-fair across flows with registered weights;
    /// untagged or unregistered flows take the plain FIFO path.
    pub fn process_flow(&self, at: SimTime, qp_ctx: u64, kind: WrKind, flow: FlowId) -> SimTime {
        let base = match kind {
            WrKind::SendRc | WrKind::SendUd | WrKind::Read | WrKind::Write => {
                // Doorbell coalescing: a sender-side WR arriving hot on the
                // heels of the previous one on the same QP context rides
                // that doorbell (the driver chains WQEs), paying only the
                // amortized fetch cost. Receive matching and passive DMA
                // service never ring a doorbell.
                let mut doorbell = self.doorbell.lock();
                let batched = doorbell
                    .insert(qp_ctx, at)
                    .is_some_and(|last| at <= last + self.doorbell_window);
                if batched {
                    self.wr_nic_batched
                } else {
                    self.wr_nic
                }
            }
            WrKind::RemoteDma => self.wr_nic,
            WrKind::RecvMatch => self.wr_recv_match,
        };
        let hit = self.cache.lock().touch(qp_ctx);
        let cost = if hit { base } else { base + self.qp_cache_miss };
        {
            let o = self.obs.lock();
            o.work_requests.inc();
            if hit {
                o.cache_hits.inc();
            } else {
                o.cache_misses.inc();
                // The thrash signal behind Figure 11: each miss is a PCIe
                // round trip fetching the QP context from host memory.
                o.obs.recorder.event(
                    o.node,
                    HW_TRACK,
                    at.as_nanos(),
                    EventKind::QpCacheMiss,
                    qp_ctx,
                );
            }
        }
        self.pipe.lock().reserve_flow(at, cost, flow, &self.flows).end
    }

    /// Total pipeline occupancy granted to `flow`, ever.
    pub fn flow_busy(&self, flow: FlowId) -> SimDuration {
        self.pipe.lock().busy_for(flow)
    }

    /// Total pipeline occupancy across all traffic, ever.
    pub fn busy_total(&self) -> SimDuration {
        self.pipe.lock().busy_total()
    }

    /// Snapshot of the NIC counters (view over the unified registry).
    pub fn stats(&self) -> NicStats {
        let o = self.obs.lock();
        NicStats {
            work_requests: o.work_requests.get(),
            qp_cache_hits: o.cache_hits.get(),
            qp_cache_misses: o.cache_misses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nic() -> NicModel {
        NicModel::new(&DeviceProfile::fdr())
    }

    #[test]
    fn cached_qp_costs_base_time() {
        let n = nic();
        let p = DeviceProfile::fdr();
        let t1 = n.process(SimTime::ZERO, 7, WrKind::SendRc); // Miss (cold).
        let t2 = n.process(t1, 7, WrKind::SendRc); // Hit.
        assert_eq!((t2 - t1).as_nanos(), p.wr_nic.as_nanos());
        assert_eq!(t1.as_nanos(), (p.wr_nic + p.qp_cache_miss).as_nanos());
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let p = DeviceProfile::fdr();
        let n = nic();
        let qps = (p.qp_cache_entries * 2) as u64;
        // Round-robin over 2× the cache capacity: every touch misses.
        let mut t = SimTime::ZERO;
        for i in 0..qps * 3 {
            t = n.process(t, i % qps, WrKind::SendRc);
        }
        let s = n.stats();
        assert_eq!(s.qp_cache_hits, 0, "LRU thrash must never hit");
        assert_eq!(s.qp_cache_misses, qps * 3);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let n = nic();
        let mut t = SimTime::ZERO;
        for round in 0..10u64 {
            for qp in 0..8u64 {
                t = n.process(t, qp, WrKind::SendRc);
                let _ = round;
            }
        }
        let s = n.stats();
        assert_eq!(s.qp_cache_misses, 8, "only cold misses");
        assert_eq!(s.qp_cache_hits, 72);
    }

    #[test]
    fn doorbell_window_batches_back_to_back_sends() {
        let n = nic();
        let p = DeviceProfile::fdr();
        // Cold-warm the context so only pipeline occupancy remains.
        n.process(SimTime::ZERO, 3, WrKind::SendRc);
        // Fresh doorbell well past the window: full per-WR cost.
        let t0 = SimTime::from_nanos(10_000);
        let a = n.process(t0, 3, WrKind::SendRc);
        assert_eq!((a - t0).as_nanos(), p.wr_nic.as_nanos());
        // A WR arriving within the window of the previous *arrival* rides
        // that doorbell and pays only the batched cost.
        let b = n.process(t0 + SimDuration::from_nanos(100), 3, WrKind::SendRc);
        assert_eq!((b - a).as_nanos(), p.wr_nic_batched.as_nanos());
        // Far outside the window: a new doorbell at full cost again.
        let late = b + p.doorbell_window + SimDuration::from_nanos(1);
        let t2 = n.process(late, 3, WrKind::SendRc);
        assert_eq!((t2 - late).as_nanos(), p.wr_nic.as_nanos());
    }

    #[test]
    fn doorbell_window_never_batches_recv_match() {
        let n = nic();
        let p = DeviceProfile::fdr();
        let warm = n.process(SimTime::ZERO, 4, WrKind::RecvMatch);
        // Back-to-back receive matching keeps the full per-WR cost: there
        // is no doorbell on the receive path.
        let t1 = n.process(warm, 4, WrKind::RecvMatch);
        assert_eq!((t1 - warm).as_nanos(), p.wr_recv_match.as_nanos());
    }

    #[test]
    fn pipeline_serializes_requests() {
        let n = nic();
        let p = DeviceProfile::fdr();
        // Warm the QP context first so only pipeline occupancy remains.
        let warm = n.process(SimTime::ZERO, 1, WrKind::RecvMatch);
        // Two requests at the same instant: the second queues.
        let t1 = n.process(warm, 1, WrKind::RecvMatch);
        let t2 = n.process(warm, 1, WrKind::RecvMatch);
        assert_eq!((t1 - warm).as_nanos(), p.wr_recv_match.as_nanos());
        assert_eq!((t2 - warm).as_nanos(), p.wr_recv_match.as_nanos() * 2);
    }

    #[test]
    fn untagged_fair_resource_matches_plain_resource() {
        use crate::resource::Resource;
        // Any arrival pattern: the untagged FairResource path must produce
        // byte-identical reservations to the plain Resource ledger.
        let mut plain = Resource::new();
        let mut fair = FairResource::new();
        let table = FlowTable::new();
        let pattern = [(0u64, 100u64), (10, 50), (500, 25), (490, 100), (491, 1)];
        for (at, d) in pattern {
            let at = SimTime::from_nanos(at);
            let d = SimDuration::from_nanos(d);
            let a = plain.reserve(at, d);
            let b = fair.reserve(at, d);
            let c_at = SimTime::from_nanos(at.as_nanos() + 1_000_000);
            assert_eq!((a.start, a.end), (b.start, b.end));
            // A flow with no registered weight is untagged too.
            let mut plain2 = plain.clone();
            let c = plain2.reserve(c_at, d);
            let c2 = fair.reserve_flow(c_at, d, FlowId(7), &table);
            assert_eq!((c.start, c.end), (c2.start, c2.end));
            plain = plain2;
        }
        assert_eq!(plain.busy_total(), fair.busy_total());
        assert_eq!(plain.free_at(), fair.free_at());
    }

    #[test]
    fn solo_flow_runs_at_line_rate() {
        // A lone weighted flow must never be paced, even when other
        // (idle) flows hold most of the registered weight.
        let table = FlowTable::new();
        table.set_weight(FlowId(1), 1);
        table.set_weight(FlowId(2), 9);
        let mut fair = FairResource::new();
        let d = SimDuration::from_nanos(100);
        let mut end = SimTime::ZERO;
        for _ in 0..50 {
            let r = fair.reserve_flow(SimTime::ZERO, d, FlowId(1), &table);
            end = r.end;
        }
        assert_eq!(end.as_nanos(), 50 * 100, "solo flow must saturate the resource");
    }

    #[test]
    fn contended_flows_share_by_weight() {
        // Two backlogged flows, weights 3:1, closed loop with window 4.
        // The granted shares must approximate the weights and nobody may
        // starve; the resource must stay (nearly) fully busy.
        let table = FlowTable::new();
        table.set_weight(FlowId(1), 3);
        table.set_weight(FlowId(2), 1);
        let mut fair = FairResource::new();
        let d = SimDuration::from_nanos(100);
        // Per-flow queue of next arrival times (window of 4 outstanding).
        let mut next: Vec<Vec<SimTime>> = vec![vec![SimTime::ZERO; 4]; 2];
        let mut last_end = [SimTime::ZERO; 2];
        for _ in 0..200 {
            // Serve whichever flow's earliest outstanding arrival is older;
            // ties go to flow 1 — a deterministic interleaving.
            let f = if next[0].iter().min() <= next[1].iter().min() { 0 } else { 1 };
            let i = (0..4).min_by_key(|&i| next[f][i]).unwrap();
            let at = next[f][i];
            let r = fair.reserve_flow(at, d, FlowId(f as u32 + 1), &table);
            next[f][i] = r.end;
            last_end[f] = last_end[f].max(r.end);
        }
        let horizon = last_end[0].min(last_end[1]);
        let b1 = fair.busy_for(FlowId(1));
        let b2 = fair.busy_for(FlowId(2));
        assert!(b2 > SimDuration::ZERO, "low-weight flow starved");
        let ratio = b1.as_nanos() as f64 / b2.as_nanos() as f64;
        assert!(
            ratio > 1.5 && ratio < 4.5,
            "3:1 weights gave busy ratio {ratio:.2} ({b1:?} vs {b2:?})"
        );
        // Work conservation: donated gaps get back-filled, so total busy
        // time tracks the horizon closely.
        let busy = fair.busy_total().as_nanos() as f64;
        assert!(
            busy >= 0.9 * horizon.as_nanos() as f64,
            "resource idle too long: busy {busy} over horizon {horizon:?}"
        );
    }

    #[test]
    fn debt_cap_bounds_deferral() {
        // A heavily over-share flow may be deferred at most one weighted
        // quantum past the backlog front.
        let table = FlowTable::new();
        table.set_weight(FlowId(1), 1);
        table.set_weight(FlowId(2), 99);
        let mut fair = FairResource::new();
        let d = SimDuration::from_nanos(10);
        let adv = 10 * 100; // duration × total / weight for flow 1
        for _ in 0..100 {
            // Both flows keep arriving at time zero (infinitely backlogged).
            fair.reserve_flow(SimTime::ZERO, d, FlowId(2), &table);
            let r = fair.reserve_flow(SimTime::ZERO, d, FlowId(1), &table);
            let front = fair.free_at();
            assert!(
                r.start.as_nanos() <= front.as_nanos() + adv,
                "flow deferred to {:?} past the backlog front {front:?}",
                r.start,
            );
        }
    }

    #[test]
    fn edr_nic_absorbs_many_qps() {
        // The EDR profile must cache the full working set of the largest MQ
        // configuration in the paper: 16 nodes × 14 threads × 2 directions.
        let p = DeviceProfile::edr();
        assert!(p.qp_cache_entries >= 16 * 14 * 2);
        // While the FDR profile must NOT absorb even the single-endpoint MQ
        // working set at 16 nodes (2 × 16 QPs), so SEMQ/* degrade at scale.
        let f = DeviceProfile::fdr();
        assert!(f.qp_cache_entries < 2 * 16);
    }
}
