//! The [`Cluster`]: one kernel, one fabric, one NIC per node, one profile.
//!
//! This is the top-level handle the verbs layer and the benchmarks build on.

use std::sync::Arc;

use rshuffle_obs::Obs;

use crate::kernel::{Kernel, SimContext, SimThreadId};
use crate::net::{Fabric, Topology};
use crate::nic::{FlowTable, NicModel};
use crate::profile::DeviceProfile;
use crate::NodeId;

/// A simulated cluster of `n` identical nodes on one switch.
#[derive(Clone)]
pub struct Cluster {
    kernel: Kernel,
    fabric: Arc<Fabric>,
    nics: Arc<Vec<NicModel>>,
    flows: Arc<FlowTable>,
    profile: Arc<DeviceProfile>,
    obs: Arc<Obs>,
}

impl Cluster {
    /// Creates a cluster of `nodes` nodes using `profile`'s hardware.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, profile: DeviceProfile) -> Self {
        Self::with_topology(nodes, profile, Topology::SingleSwitch)
    }

    /// Creates a cluster with an explicit switch [`Topology`]
    /// (multi-switch fat trees for the scale-out experiments;
    /// [`Topology::SingleSwitch`] is identical to [`Cluster::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn with_topology(nodes: usize, profile: DeviceProfile, topology: Topology) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        let obs = Obs::new();
        let kernel = Kernel::new();
        kernel.set_obs(obs.clone());
        // One flow-weight table shared by the fabric ports and every NIC
        // pipeline, so a query's weight governs all its bottlenecks.
        let flows = Arc::new(FlowTable::new());
        let fabric = Arc::new(Fabric::with_topology(
            nodes,
            &profile,
            flows.clone(),
            topology,
        ));
        let nics = Arc::new(
            (0..nodes)
                .map(|node| {
                    NicModel::with_flows(&profile, obs.clone(), node as u32, flows.clone())
                })
                .collect(),
        );
        Cluster {
            kernel,
            fabric,
            nics,
            flows,
            profile: Arc::new(profile),
            obs,
        }
    }

    /// The cluster-shared flow-weight table (weighted-fair arbitration).
    pub fn flows(&self) -> &Arc<FlowTable> {
        &self.flows
    }

    /// The virtual-time kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The shared observability context every tier records into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The switch fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Node `node`'s NIC model.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn nic(&self, node: NodeId) -> &NicModel {
        &self.nics[node]
    }

    /// The hardware profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.fabric.nodes()
    }

    /// Spawns a simulated worker thread on `node`.
    pub fn spawn<F>(&self, node: NodeId, name: &str, f: F) -> SimThreadId
    where
        F: FnOnce(SimContext) + Send + 'static,
    {
        assert!(node < self.nodes(), "node {node} out of range");
        self.kernel.spawn(node, name, f)
    }

    /// Runs the simulation to completion (see [`Kernel::run`]).
    pub fn run(&self) {
        self.kernel.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cluster_spawns_on_all_nodes() {
        let cluster = Cluster::new(4, DeviceProfile::fdr());
        let count = Arc::new(AtomicUsize::new(0));
        for node in 0..4 {
            let c = count.clone();
            cluster.spawn(node, &format!("n{node}"), move |sim| {
                assert_eq!(sim.node(), node);
                sim.sleep(SimDuration::from_micros(1));
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        cluster.run();
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn spawn_on_missing_node_panics() {
        let cluster = Cluster::new(2, DeviceProfile::fdr());
        cluster.spawn(5, "bad", |_| {});
    }

    #[test]
    fn profile_is_shared() {
        let cluster = Cluster::new(2, DeviceProfile::edr());
        assert_eq!(cluster.profile().name, "EDR");
        assert_eq!(cluster.nodes(), 2);
    }
}
