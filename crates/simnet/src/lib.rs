//! Deterministic virtual-time cluster simulator.
//!
//! This crate provides the hardware substrate for the RDMA shuffling
//! reproduction: a cooperative virtual-time kernel that runs *real* algorithm
//! code on OS threads while a single global virtual clock governs timing, a
//! full-bisection switch model with per-port bandwidth arbitration, a NIC
//! model with a Queue Pair context cache, and CPU cost helpers.
//!
//! The design goal is determinism: at most one simulated thread executes at a
//! time, the runnable entity with the minimum virtual timestamp always runs
//! next, and ties are broken by (event sequence, thread id). Two runs with
//! the same seed produce bit-identical timings on any machine.
//!
//! # Example
//!
//! ```
//! use rshuffle_simnet::{Kernel, SimDuration};
//!
//! let kernel = Kernel::new();
//! let k = kernel.clone();
//! kernel.spawn(0, "worker", move |sim| {
//!     sim.sleep(SimDuration::from_micros(5));
//!     assert_eq!(sim.now().as_nanos(), 5_000);
//! });
//! kernel.run();
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod kernel;
pub mod lru;
pub mod net;
pub mod nic;
pub mod profile;
pub mod resource;
pub mod sync;
pub mod time;

pub use cluster::Cluster;
pub use kernel::{Gate, Kernel, RecvTimeout, SimContext, SimThreadId, ThreadStats};
pub use net::{Fabric, IncastModel, Topology};
pub use nic::{FairResource, FlowId, FlowTable, NicModel};
pub use profile::DeviceProfile;
pub use resource::Resource;
pub use sync::{SimBarrier, SimMutex};
pub use time::{SimDuration, SimTime};

/// Identifier of a simulated node (machine) in the cluster.
pub type NodeId = usize;
