//! Offline drop-in subset of the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `parking_lot`'s API it actually uses:
//! [`Mutex`] / [`MutexGuard`] with non-poisoning `lock()`, [`RwLock`], and
//! a [`Condvar`] whose `wait` takes `&mut MutexGuard` (the parking_lot
//! calling convention, which differs from `std`). Poisoned `std` locks are
//! transparently recovered, matching parking_lot's "no poisoning"
//! semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (non-poisoning facade over `std`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves unique access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while the thread sleeps, then put the reacquired guard back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is reacquired before returning (parking_lot signature: the
    /// guard is borrowed, not consumed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock (non-poisoning facade over `std`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shares_readers() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
