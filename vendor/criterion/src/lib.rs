//! Offline drop-in subset of the `criterion` crate.
//!
//! Implements enough of criterion's API for the workspace's benches to
//! compile and produce useful (if statistically naive) numbers: each
//! `bench_function` runs the closure for a fixed number of timed samples
//! and prints mean ns/iter. There is no warm-up modelling, outlier
//! rejection, or plotting.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.throughput, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` times the hot path.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    total_iters: u64,
}

impl Bencher {
    /// Times `f` over a fixed number of samples and accumulates elapsed
    /// wall-clock time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed call to page in code and data.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total_nanos += start.elapsed().as_nanos();
            self.total_iters += 1;
        }
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    f: &mut impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        total_nanos: 0,
        total_iters: 0,
    };
    f(&mut b);
    let per_iter = b.total_nanos as f64 / b.total_iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.1} Melem/s", n as f64 / per_iter * 1e3),
        Throughput::Bytes(n) => format!("  {:.1} MiB/s", n as f64 / per_iter * 1e9 / 1048576.0),
    });
    println!(
        "bench {name:<40} {per_iter:>12.0} ns/iter{}",
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        let mut hits = 0u32;
        g.bench_function("f", |b| b.iter(|| hits += 1));
        g.finish();
        assert_eq!(hits, 3);
    }
}
