//! Offline drop-in subset of `serde_json`: serializes the vendored
//! [`serde::Value`] tree to JSON text and parses JSON text back into a
//! [`Value`] tree. Output is deterministic — object keys keep insertion
//! order, floats render via Rust's shortest-roundtrip formatting, and
//! non-finite floats become `null` (matching real serde_json's lossy
//! behaviour for JSON).

use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error with a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (two-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // `{}` prints integral floats without a fraction ("1"),
                // which is still a valid JSON number; keep it as-is.
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(out, indent, level, '[', ']', items.iter(), |out, item, lvl| {
                write_value(out, item, indent, lvl)
            });
        }
        Value::Object(entries) => {
            write_seq(
                out,
                indent,
                level,
                '{',
                '}',
                entries.iter(),
                |out, (k, val), lvl| {
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, lvl);
                },
            );
        }
    }
}

fn write_seq<I, T>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let inner = level + 1;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * inner));
        }
        write_item(out, item, inner);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Numbers without a fraction or exponent become [`Value::UInt`] (or
/// [`Value::Int`] when negative); everything else numeric becomes
/// [`Value::Float`]. Trailing whitespace is allowed, trailing garbage is
/// an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + lo.wrapping_sub(0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::new(format!("invalid escape at byte {}", self.pos))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number at byte {start}")))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Int(-2), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[-2,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Bool(true)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    true\n  ]\n}"
        );
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn floats_and_control_chars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&"\u{1}").unwrap(), "\"\\u0001\"");
    }

    #[test]
    fn u64_max_survives() {
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Int(-2), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Float(1.5)),
            ("e".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = Value::Object(vec![(
            "benches".into(),
            Value::Array(vec![Value::Object(vec![
                ("id".into(), Value::Str("fig09a".into())),
                ("p99".into(), Value::UInt(123_456)),
            ])]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(to_string(&from_str(&text).unwrap()).unwrap(), to_string(&v).unwrap());
    }

    #[test]
    fn parse_number_shapes() {
        assert!(matches!(from_str("42").unwrap(), Value::UInt(42)));
        assert!(matches!(from_str("-7").unwrap(), Value::Int(-7)));
        assert!(matches!(from_str("1.25").unwrap(), Value::Float(f) if f == 1.25));
        assert!(matches!(from_str("2e3").unwrap(), Value::Float(f) if f == 2000.0));
        assert_eq!(
            to_string(&from_str(&u64::MAX.to_string()).unwrap()).unwrap(),
            u64::MAX.to_string()
        );
    }

    #[test]
    fn parse_unicode_escapes() {
        assert!(matches!(
            from_str(r#""A😀""#).unwrap(),
            Value::Str(s) if s == "A\u{1F600}"
        ));
        assert!(matches!(
            from_str(r#""😀A""#).unwrap(),
            Value::Str(s) if s == "\u{1F600}A"
        ));
        assert!(matches!(
            from_str("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str(s) if s == "\u{1F600}"
        ));
        assert!(from_str("\"\\ud83d\"").is_err(), "lone surrogate");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1} x").is_err());
        assert!(from_str("nul").is_err());
    }
}
