//! Offline drop-in subset of `serde_json`: serializes the vendored
//! [`serde::Value`] tree to JSON text. Output is deterministic — object
//! keys keep insertion order, floats render via Rust's shortest-roundtrip
//! formatting, and non-finite floats become `null` (matching real
//! serde_json's lossy behaviour for JSON).

use std::fmt;

pub use serde::Value;

/// Serialization error. The stub's serializer is infallible in practice;
/// the type exists so call sites match real serde_json's signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (two-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // `{}` prints integral floats without a fraction ("1"),
                // which is still a valid JSON number; keep it as-is.
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(out, indent, level, '[', ']', items.iter(), |out, item, lvl| {
                write_value(out, item, indent, lvl)
            });
        }
        Value::Object(entries) => {
            write_seq(
                out,
                indent,
                level,
                '{',
                '}',
                entries.iter(),
                |out, (k, val), lvl| {
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, lvl);
                },
            );
        }
    }
}

fn write_seq<I, T>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return;
    }
    let inner = level + 1;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * inner));
        }
        write_item(out, item, inner);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip_shapes() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Int(-2), Value::Null])),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[-2,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Bool(true)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    true\n  ]\n}"
        );
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn floats_and_control_chars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&"\u{1}").unwrap(), "\"\\u0001\"");
    }

    #[test]
    fn u64_max_survives() {
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
    }
}
