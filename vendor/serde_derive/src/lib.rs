//! `#[derive(Serialize)]` for the vendored serde stub.
//!
//! Written against `proc_macro` alone (no `syn`/`quote`, which are not
//! available offline): the input token stream is walked by hand. Supported
//! shapes — structs with named fields, and enums whose variants are all
//! unit variants (serialized as their name string). Anything fancier
//! (generics, tuple structs, data-carrying variants) produces a
//! `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize) stub does not support generics on `{name}`"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "derive(Serialize) stub supports only brace-bodied `{kind} {name}`"
            ))
        }
    };

    match kind.as_str() {
        "struct" => {
            let fields = named_fields(body)?;
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            Ok(format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
            .parse()
            .unwrap())
        }
        "enum" => {
            let variants = unit_variants(body)?;
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(String::from({v:?})),"))
                .collect();
            Ok(format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
            .parse()
            .unwrap())
        }
        other => Err(format!("cannot derive Serialize for `{other}`")),
    }
}

/// Extracts field names from a struct body: skips attributes and `pub`,
/// takes the identifier before each top-level `:`, then skips the type
/// (angle-bracket depth tracked) up to the next top-level `,`.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                let field = id.to_string();
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    _ => return Err(format!("expected `:` after field `{field}`")),
                }
                fields.push(field);
                // Skip the type up to the next comma outside angle brackets.
                let mut depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => return Err(format!("unexpected token in struct body: {other:?}")),
        }
    }
    Ok(fields)
}

/// Extracts variant names from an enum body, requiring every variant to be
/// a unit variant (no payload, no discriminant expression beyond `= <int>`).
fn unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "derive(Serialize) stub supports only unit variants; \
                             `{}` carries data",
                            variants.last().unwrap()
                        ))
                    }
                    Some(other) => {
                        return Err(format!("unexpected token after variant: {other:?}"))
                    }
                }
            }
            other => return Err(format!("unexpected token in enum body: {other:?}")),
        }
    }
    Ok(variants)
}
