//! Offline drop-in subset of the `proptest` crate.
//!
//! Supports the surface this workspace uses: the `proptest!` macro over
//! `#[test]` functions with `arg in strategy` bindings, `any::<T>()` for
//! the integer types / bool / byte arrays, integer range strategies, and
//! `prop::collection::vec`. Sampling is purely random (no shrinking) and
//! fully deterministic: the RNG seed is derived from the test's name, so
//! every run explores the same cases. `prop_assert*` map to the standard
//! `assert*` macros.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Cases sampled per property.
pub const CASES: usize = 64;

/// Deterministic test RNG (splitmix64), seeded from the test name.
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy");
                (lo + (rng.next_u64() as u128 % (hi - lo) as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.next_u64() as u128 % span
                };
                (lo + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A vector-length range, as real proptest's `SizeRange`:
        /// anything integer-range-like converts into it.
        #[derive(Copy, Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        macro_rules! impl_size_from {
            ($($t:ty),*) => {$(
                impl From<Range<$t>> for SizeRange {
                    fn from(r: Range<$t>) -> SizeRange {
                        assert!(r.start < r.end, "empty size range");
                        SizeRange {
                            lo: r.start as usize,
                            hi_inclusive: r.end as usize - 1,
                        }
                    }
                }
                impl From<RangeInclusive<$t>> for SizeRange {
                    fn from(r: RangeInclusive<$t>) -> SizeRange {
                        assert!(r.start() <= r.end(), "empty size range");
                        SizeRange {
                            lo: *r.start() as usize,
                            hi_inclusive: *r.end() as usize,
                        }
                    }
                }
                impl From<$t> for SizeRange {
                    fn from(n: $t) -> SizeRange {
                        SizeRange { lo: n as usize, hi_inclusive: n as usize }
                    }
                }
            )*};
        }
        impl_size_from!(usize, u32, i32);

        /// Strategy producing `Vec`s of sampled elements.
        pub struct VecStrategy<E> {
            element: E,
            size: SizeRange,
        }

        /// Produces vectors whose length is sampled uniformly from
        /// `size` and whose elements are sampled from `element`.
        pub fn vec<E, S>(element: E, size: S) -> VecStrategy<E>
        where
            E: Strategy,
            S: Into<SizeRange>,
        {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<E> Strategy for VecStrategy<E>
        where
            E: Strategy,
        {
            type Value = Vec<E::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` site expects.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Strategy, TestRng};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro samples every binding and runs the body.
        #[test]
        fn bindings_are_in_range(x in 3u32..10, y in 0i64..=5, v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..=5).contains(&y));
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn arrays_sample_all_lanes() {
        let mut rng = TestRng::deterministic("arr");
        let a: [u8; 8] = Arbitrary::arbitrary(&mut rng);
        let b: [u8; 8] = Arbitrary::arbitrary(&mut rng);
        assert_ne!(a, b, "consecutive samples should differ");
    }
}
