//! Offline drop-in subset of the `serde` crate.
//!
//! The real serde's zero-copy `Serializer` machinery is overkill for this
//! workspace, which only ever serializes small result/metrics structs to
//! JSON files. This stub models serialization as conversion into an owned
//! [`Value`] tree that `serde_json` (the sibling stub) renders. The
//! `#[derive(Serialize)]` macro is re-exported from `serde_derive` and
//! generates field-by-field [`Serialize::to_value`] implementations, so
//! user code is written exactly as against real serde.

// Lets the derive macro's generated `serde::...` paths resolve even
// inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

use std::collections::BTreeMap;

/// An owned JSON-like document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into an owned document tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5u64.to_value(), Value::UInt(5));
        assert_eq!((-5i32).to_value(), Value::Int(-5));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.0f64, 2.0f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![
                Value::Float(1.0),
                Value::Float(2.0)
            ])])
        );
    }

    #[test]
    fn derive_generates_object_in_field_order() {
        #[derive(Serialize)]
        struct S {
            b: u32,
            a: String,
        }
        let s = S {
            b: 7,
            a: "hi".into(),
        };
        assert_eq!(
            s.to_value(),
            Value::Object(vec![
                ("b".into(), Value::UInt(7)),
                ("a".into(), Value::Str("hi".into())),
            ])
        );
    }
}
