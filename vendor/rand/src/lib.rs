//! Offline drop-in subset of the `rand` crate (0.8 API surface).
//!
//! Provides exactly what this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_range` (over `Range`/`RangeInclusive` of the integer types) and
//! `gen_bool`. The generator is xoshiro256**, which is deterministic,
//! fast and statistically solid; streams differ from upstream `rand`, but
//! nothing in the workspace depends on upstream's exact byte streams —
//! only on per-seed determinism.

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be reproducibly seeded.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits in [0, 1); strictly below 1.0, so p = 1.0
        // always fires and p = 0.0 never does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// `self` as a signed 128-bit value (wide enough for every int type).
    fn to_i128(self) -> i128;
    /// Converts back from the widened representation.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_span<R: RngCore + ?Sized, T: SampleUniform>(rng: &mut R, lo: i128, span: u128) -> T {
    // Modulo bias is ≤ span/2^64, far below anything the simulator can
    // observe; determinism is what matters here.
    let off = if span == 0 {
        // Degenerate: the full 2^64-wide inclusive range of a 64-bit type.
        rng.next_u64() as u128
    } else {
        rng.next_u64() as u128 % span
    };
    T::from_i128(lo + off as i128)
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range: empty range");
        sample_span(rng, lo, (hi - lo) as u128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range: empty range");
        let span = (hi - lo) as u128 + 1;
        sample_span(rng, lo, if span > u64::MAX as u128 { 0 } else { span })
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through splitmix64, as the xoshiro authors
            // recommend, so nearby seeds yield unrelated states.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let d: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        let mut a2 = StdRng::seed_from_u64(42);
        let e: Vec<u64> = (0..16).map(|_| a2.gen_range(0..u64::MAX)).collect();
        assert_ne!(d, e, "different seeds diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..5u8);
            assert!(u < 5);
        }
    }

    #[test]
    fn degenerate_and_extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
            assert_eq!(rng.gen_range(3u8..4), 3, "single-value range");
        }
        // gen_bool(p) hits roughly p of the time.
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..32 {
            distinct.insert(rng.gen_range(0u64..=u64::MAX));
        }
        assert!(distinct.len() > 16, "full-range sampling must vary");
    }
}
