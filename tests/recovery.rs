//! Partial-failure recovery suite: epoch-fenced per-flow retry, QP
//! reconnect with backoff, and graceful algorithm degradation.
//!
//! The contract under test extends the chaos suite's: under a Queue
//! Pair failure the recovery orchestrator must (a) keep the rows
//! delivered before the failure instead of redoing them — strictly
//! fewer redone bytes than the full-restart baseline under the same
//! fault plan, (b) still deliver every generated row exactly once
//! across epoch bumps, (c) stay same-seed byte-identical, (d) keep the
//! protocol auditor clean across rebuilds, and (e) when the fabric
//! never heals, either step down the degradation ladder mid-query or
//! surface a typed [`ShuffleError::RetryBudgetExhausted`] — never a
//! hang.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_repro::engine::{
    run_shuffle_with_recovery, Generator, RecoveryPolicy, RecoveryReport,
};
use rshuffle_repro::rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm, ShuffleError};
use rshuffle_repro::simnet::{DeviceProfile, SimDuration};
use rshuffle_repro::simnet::FlowId;
use rshuffle_repro::verbs::{FaultConfig, FaultPlan, QpScope};

const NODES: usize = 3;
const THREADS: usize = 2;
// Larger than the chaos suite's workload: healthy queries finish in
// 13–32 µs of virtual time at 1000 rows/thread, which a fault window
// opening at 20 µs would miss entirely for the fast SR designs. At
// 4000 rows every algorithm is mid-flight when the outage lands.
const ROWS_PER_THREAD: usize = 4000;
const ROW: usize = 16;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn recovery_config(algorithm: ShuffleAlgorithm, plan: FaultPlan) -> ExchangeConfig {
    let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
    config.message_size = 4096;
    config.stall_timeout = SimDuration::from_millis(2);
    config.depleted_timeout = us(500);
    config.faults = FaultConfig {
        seed: 42,
        plan,
        ..FaultConfig::default()
    };
    // Tag the query's memory so the orchestrator's per-attempt release
    // is observable: after the run, every node's registered bytes must
    // be back to zero however many rebuilds recovery took.
    config.flow = FlowId(1);
    config
}

/// Policy that prefers the partial-retry rung.
fn partial_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_partial_retries: 6,
        reconnect_budget: 10,
        max_full_restarts: 6,
        ..RecoveryPolicy::default()
    }
}

/// Policy with the partial rung disabled: every failure takes the
/// full-restart path, the baseline the containment matrix compares
/// against.
fn full_only_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_partial_retries: 0,
        max_full_restarts: 6,
        ..RecoveryPolicy::default()
    }
}

struct RecoveryRun {
    report: RecoveryReport,
    /// Rows delivered to any sink, keyed by generation.
    delivered: HashMap<u32, Vec<[u8; ROW]>>,
    snapshot: String,
    trace: String,
    violations: usize,
}

fn run_recovery(
    algorithm: ShuffleAlgorithm,
    plan: FaultPlan,
    policy: RecoveryPolicy,
) -> RecoveryRun {
    let config = recovery_config(algorithm, plan);
    let runtime = config.build_runtime(DeviceProfile::edr());
    let auditor = runtime.enable_audit();
    let delivered: Arc<Mutex<HashMap<u32, Vec<[u8; ROW]>>>> = Arc::new(Mutex::new(HashMap::new()));
    let d = delivered.clone();
    let report = run_shuffle_with_recovery(
        &runtime,
        &config,
        policy,
        ROW,
        |_, node| {
            Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64)) as Arc<dyn Operator>
        },
        move |generation, _, _, batch| {
            let mut map = d.lock();
            let rows = map.entry(generation).or_default();
            for row in batch.iter() {
                rows.push(row.try_into().expect("16-byte row"));
            }
        },
    );
    runtime.cluster().run();
    let obs = runtime.obs();
    let report = report.lock().clone();
    let violations = auditor.finalize(report.succeeded()).len();
    // Memory-budget hygiene across rebuilds: every exchange generation
    // and every reconnect probe must deregister what it pinned.
    for node in 0..NODES {
        assert_eq!(
            runtime.registered_bytes(node),
            0,
            "node {node}: registered memory leaked across recovery rebuilds"
        );
    }
    RecoveryRun {
        report,
        delivered: Arc::try_unwrap(delivered)
            .map(|m| m.into_inner())
            .unwrap_or_default(),
        snapshot: obs.snapshot_json(),
        trace: obs.chrome_trace_json(),
        violations,
    }
}

/// Every row each node's generator will emit, cluster-wide.
fn expected_rows() -> Vec<[u8; ROW]> {
    let mut rows = Vec::with_capacity(NODES * THREADS * ROWS_PER_THREAD);
    for node in 0..NODES {
        for tid in 0..THREADS {
            for seq in 0..ROWS_PER_THREAD {
                rows.push(Generator::row(node as u64, tid, seq));
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// A transient QP outage on node 1 killing every Queue Pair built while
/// the window is open — the canonical partial-failure the recovery
/// layer exists for.
fn qp_outage() -> FaultPlan {
    FaultPlan::new().qp_failure_window(1, us(20), us(150), QpScope::All)
}

fn assert_exactly_once(run: &RecoveryRun, label: &str) {
    let expected = expected_rows();
    let mut got = run
        .delivered
        .get(&run.report.generation)
        .cloned()
        .unwrap_or_default();
    got.sort_unstable();
    assert_eq!(
        got.len(),
        expected.len(),
        "{label}: delivered {} of {} rows (partial retries: {}, full restarts: {})",
        got.len(),
        expected.len(),
        run.report.partial_retries,
        run.report.full_restarts
    );
    assert_eq!(
        got, expected,
        "{label}: delivered rows diverge from the source"
    );
    assert_eq!(run.report.rows, expected.len() as u64, "{label}");
}

/// The containment matrix: under the same single-node QP outage, the
/// partial-retry path must redo strictly fewer sink-visible bytes than
/// the full-restart baseline, for every one of the six designs, while
/// both deliver exactly once with a clean auditor.
#[test]
fn partial_recovery_redoes_strictly_fewer_bytes_than_full_restart() {
    for algorithm in ShuffleAlgorithm::ALL {
        let partial = run_recovery(algorithm, qp_outage(), partial_policy());
        let full = run_recovery(algorithm, qp_outage(), full_only_policy());
        assert!(
            partial.report.succeeded(),
            "{algorithm}: partial recovery failed: {:?}",
            partial.report.failure
        );
        assert!(
            full.report.succeeded(),
            "{algorithm}: full-restart baseline failed: {:?}",
            full.report.failure
        );
        assert_exactly_once(&partial, &format!("{algorithm} partial"));
        assert_exactly_once(&full, &format!("{algorithm} full"));
        assert!(
            partial.report.partial_retries >= 1,
            "{algorithm}: the outage must exercise the partial rung"
        );
        assert_eq!(
            partial.report.full_restarts, 0,
            "{algorithm}: partial recovery must contain the failure without a full restart"
        );
        assert!(
            full.report.full_restarts >= 1,
            "{algorithm}: baseline must take the full-restart path"
        );
        assert!(
            full.report.redone_bytes > 0,
            "{algorithm}: baseline discarded no work — the fault landed too early to compare"
        );
        assert!(
            partial.report.redone_bytes < full.report.redone_bytes,
            "{algorithm}: containment violated — partial redid {} bytes, full restart {}",
            partial.report.redone_bytes,
            full.report.redone_bytes
        );
        assert!(
            partial.report.kept_bytes > 0,
            "{algorithm}: a partial retry must carry watermarked bytes forward"
        );
        assert!(
            partial.report.qp_reconnects >= 1,
            "{algorithm}: the resume must be probe-gated"
        );
        assert_eq!(
            partial.violations, 0,
            "{algorithm}: auditor must stay clean across epoch bumps"
        );
        assert_eq!(full.violations, 0, "{algorithm}: baseline auditor clean");
        assert!(
            partial.snapshot.contains("endpoint.stale_epoch_drops"),
            "{algorithm}: the epoch fence must be observable in the snapshot"
        );
    }
}

/// Same-seed recovery runs — including the reconnect probes, backoff
/// schedule and epoch bumps — must be byte-identical down to the
/// metrics snapshot and Chrome trace.
#[test]
fn same_seed_recovery_runs_are_byte_identical() {
    for algorithm in [ShuffleAlgorithm::MEMQ_RD, ShuffleAlgorithm::SESQ_SR] {
        let a = run_recovery(algorithm, qp_outage(), partial_policy());
        let b = run_recovery(algorithm, qp_outage(), partial_policy());
        assert_eq!(
            a.report.partial_retries, b.report.partial_retries,
            "{algorithm}: same-seed runs took different retry counts"
        );
        assert_eq!(
            a.snapshot, b.snapshot,
            "{algorithm}: same-seed recovery runs must produce byte-identical snapshots"
        );
        assert_eq!(
            a.trace, b.trace,
            "{algorithm}: same-seed recovery runs must produce byte-identical traces"
        );
    }
}

/// A persistent RC-only outage: the fixed MEMQ/RD design exhausts its
/// reconnect budget twice and must complete mid-query via the ladder
/// (MEMQ/RD → MEMQ/SR → MESQ/SR), without ever bumping the generation —
/// every row delivered before each descent is kept.
#[test]
fn persistent_rc_outage_degrades_to_ud_and_completes() {
    let plan = FaultPlan::new().qp_failure_window(1, us(20), SimDuration::from_millis(500), QpScope::Rc);
    let policy = RecoveryPolicy {
        max_partial_retries: 8,
        reconnect_budget: 3,
        max_full_restarts: 0, // the ladder alone must save the query
        ..RecoveryPolicy::default()
    };
    let run = run_recovery(ShuffleAlgorithm::MEMQ_RD, plan, policy);
    assert!(
        run.report.succeeded(),
        "degradation must complete the query: {:?}",
        run.report.failure
    );
    assert_eq!(
        run.report.degradations,
        vec![ShuffleAlgorithm::MEMQ_SR, ShuffleAlgorithm::MESQ_SR],
        "expected the two-rung descent to the UD design"
    );
    assert_eq!(run.report.final_algorithm, ShuffleAlgorithm::MESQ_SR);
    assert_eq!(run.report.full_restarts, 0);
    assert_eq!(run.report.generation, 0, "degradation keeps the generation");
    assert_exactly_once(&run, "degraded MEMQ_RD");
    assert_eq!(run.violations, 0, "auditor clean across the descent");
    assert!(
        run.snapshot.contains("engine.degraded"),
        "degradation must be observable in the metrics snapshot"
    );
}

/// A permanent all-transport outage with degradation disabled: the
/// reconnect budget runs out, no rung is available, no full restart is
/// allowed — the query must give up with the typed budget error, not
/// hang.
#[test]
fn exhausted_budgets_surface_typed_error_not_a_hang() {
    let plan =
        FaultPlan::new().qp_failure_window(1, us(20), SimDuration::from_millis(500), QpScope::All);
    let policy = RecoveryPolicy {
        max_partial_retries: 4,
        reconnect_budget: 3,
        allow_degradation: false,
        max_full_restarts: 0,
        ..RecoveryPolicy::default()
    };
    let run = run_recovery(ShuffleAlgorithm::MEMQ_SR, plan, policy);
    let failure = run
        .report
        .failure
        .clone()
        .unwrap_or_else(|| panic!("a permanent outage cannot succeed without restarts"));
    assert!(
        matches!(failure, ShuffleError::RetryBudgetExhausted { node: 1, .. }),
        "expected the typed budget error, got {failure:?}"
    );
    assert!(
        run.report.qp_reconnects >= 3,
        "the budget must actually be spent"
    );
}

/// Healthy runs pay nothing: no retries, no reconnects, no redone
/// bytes, and the wire format (epoch 0 everywhere) leaves the metrics
/// snapshot identical across repeated runs.
#[test]
fn healthy_recovery_runs_are_free_and_deterministic() {
    let a = run_recovery(ShuffleAlgorithm::MESQ_SR, FaultPlan::new(), partial_policy());
    let b = run_recovery(ShuffleAlgorithm::MESQ_SR, FaultPlan::new(), partial_policy());
    assert!(a.report.succeeded());
    assert_eq!(a.report.partial_retries, 0);
    assert_eq!(a.report.qp_reconnects, 0);
    assert_eq!(a.report.full_restarts, 0);
    assert_eq!(a.report.redone_bytes, 0);
    assert_eq!(a.report.recovery, None);
    assert_exactly_once(&a, "healthy MESQ_SR");
    assert_eq!(a.snapshot, b.snapshot, "healthy runs must be byte-identical");
    assert_eq!(a.violations, 0);
}
