//! Chaos suite: every shuffle algorithm × a matrix of seeded fault plans.
//!
//! The contract under test is the paper's §4.4.2 failure model plus this
//! repo's recovery layer: under any injected fault, a query either
//! delivers every generated row exactly once (possibly after bounded
//! query restarts) or returns a typed [`ShuffleError`] — never a hang,
//! never a panic, never a duplicated or dropped row in the winning
//! attempt. Because faults are virtual-time-scheduled and every random
//! draw is seeded, same-seed chaos runs must be byte-identical down to
//! the metrics snapshot and Chrome trace.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_repro::engine::{run_shuffle_with_restart, Generator, QueryReport, RestartPolicy};
use rshuffle_repro::rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm, ShuffleError};
use rshuffle_repro::simnet::{DeviceProfile, SimDuration};
use rshuffle_repro::verbs::{FaultConfig, FaultPlan};

const NODES: usize = 3;
const THREADS: usize = 2;
const ROWS_PER_THREAD: usize = 1000;
const ROW: usize = 16;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// The chaos matrix: one representative plan per fault type. Offsets are
/// early (≤ 20 µs) so every fault lands while the query is in flight;
/// windows are short relative to the 2 ms stall timeout where the fault
/// should be ridden out (flap, degrade, straggler) and long enough to
/// force typed errors where recovery requires a restart (pause, QP
/// failure, UD burst).
fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("link-flap", FaultPlan::new().link_flap(1, us(10), us(150))),
        (
            "link-degrade",
            FaultPlan::new().link_degrade(1, us(5), us(400), 0.25, us(2)),
        ),
        (
            "straggler",
            FaultPlan::new().straggler(2, us(5), us(500), 4.0),
        ),
        (
            "receiver-pause",
            FaultPlan::new().receiver_pause(1, us(10), us(300)),
        ),
        ("qp-failure", FaultPlan::new().qp_failure(1, us(20))),
        (
            "ud-loss-burst",
            FaultPlan::new().ud_loss_burst(0, us(10), us(120), 1.0),
        ),
    ]
}

fn chaos_config(algorithm: ShuffleAlgorithm, plan: FaultPlan) -> ExchangeConfig {
    let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
    config.message_size = 4096;
    // Short watchdogs so injected faults surface quickly in virtual time.
    config.stall_timeout = SimDuration::from_millis(2);
    config.depleted_timeout = us(500);
    config.faults = FaultConfig {
        seed: 42,
        plan,
        ..FaultConfig::default()
    };
    config
}

fn chaos_policy() -> RestartPolicy {
    RestartPolicy {
        max_restarts: 6,
        initial_backoff: us(50),
        max_backoff: SimDuration::from_millis(1),
    }
}

struct ChaosRun {
    report: QueryReport,
    /// Rows delivered to any sink, keyed by attempt number.
    delivered: HashMap<u32, Vec<[u8; ROW]>>,
    snapshot: String,
    trace: String,
}

fn run_chaos(algorithm: ShuffleAlgorithm, plan: FaultPlan, policy: RestartPolicy) -> ChaosRun {
    let config = chaos_config(algorithm, plan);
    let runtime = config.build_runtime(DeviceProfile::edr());
    let delivered: Arc<Mutex<HashMap<u32, Vec<[u8; ROW]>>>> = Arc::new(Mutex::new(HashMap::new()));
    let d = delivered.clone();
    let report = run_shuffle_with_restart(
        &runtime,
        &config,
        policy,
        ROW,
        |_, node| {
            Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64)) as Arc<dyn Operator>
        },
        move |attempt, _, _, batch| {
            let mut map = d.lock();
            let rows = map.entry(attempt).or_default();
            for row in batch.iter() {
                rows.push(row.try_into().expect("16-byte row"));
            }
        },
    );
    runtime.cluster().run();
    let obs = runtime.obs();
    let report = report.lock().clone();
    ChaosRun {
        report,
        delivered: Arc::try_unwrap(delivered)
            .map(|m| m.into_inner())
            .unwrap_or_default(),
        snapshot: obs.snapshot_json(),
        trace: obs.chrome_trace_json(),
    }
}

/// Every row each node's generator will emit, cluster-wide.
fn expected_rows() -> Vec<[u8; ROW]> {
    let mut rows = Vec::with_capacity(NODES * THREADS * ROWS_PER_THREAD);
    for node in 0..NODES {
        for tid in 0..THREADS {
            for seq in 0..ROWS_PER_THREAD {
                rows.push(Generator::row(node as u64, tid, seq));
            }
        }
    }
    rows.sort_unstable();
    rows
}

#[test]
fn every_algorithm_survives_every_fault_plan_exactly_once() {
    let expected = expected_rows();
    for (plan_name, plan) in fault_matrix() {
        for algorithm in ShuffleAlgorithm::ALL {
            let run = run_chaos(algorithm, plan.clone(), chaos_policy());
            let rep = &run.report;
            assert!(
                rep.succeeded(),
                "{algorithm} under {plan_name}: query failed after {} restarts: {:?}",
                rep.restarts,
                rep.failure
            );
            assert!(
                rep.restarts <= 6,
                "{algorithm} under {plan_name}: restart budget exceeded"
            );
            // Exactly-once: the winning attempt delivered precisely the
            // generated multiset — no loss, no duplication.
            let mut got = run
                .delivered
                .get(&rep.restarts)
                .cloned()
                .unwrap_or_default();
            got.sort_unstable();
            assert_eq!(
                got.len(),
                expected.len(),
                "{algorithm} under {plan_name}: delivered {} of {} rows (restarts: {})",
                got.len(),
                expected.len(),
                rep.restarts
            );
            assert_eq!(
                got, expected,
                "{algorithm} under {plan_name}: delivered rows diverge from the source"
            );
            assert_eq!(rep.rows, expected.len() as u64, "{algorithm} {plan_name}");
        }
    }
}

#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    // A composite plan touching every node: flap + straggler + QP failure
    // + UD burst. Restart timing, backoff and metrics must reproduce
    // bit-for-bit.
    let plan = FaultPlan::new()
        .link_flap(1, us(10), us(150))
        .straggler(2, us(5), us(500), 4.0)
        .qp_failure(1, us(20))
        .ud_loss_burst(0, us(10), us(120), 1.0);
    for algorithm in ShuffleAlgorithm::ALL {
        let a = run_chaos(algorithm, plan.clone(), chaos_policy());
        let b = run_chaos(algorithm, plan.clone(), chaos_policy());
        assert_eq!(
            a.report.restarts, b.report.restarts,
            "{algorithm}: same-seed runs took different restart counts"
        );
        assert_eq!(
            a.snapshot, b.snapshot,
            "{algorithm}: same-seed chaos runs must produce byte-identical snapshots"
        );
        assert_eq!(
            a.trace, b.trace,
            "{algorithm}: same-seed chaos runs must produce byte-identical traces"
        );
    }
}

#[test]
fn unrecoverable_loss_returns_typed_error_not_a_hang() {
    // Permanent 35% datagram loss: every attempt of a UD algorithm loses
    // messages, so the restart budget runs out and the query must give up
    // with a typed, restart-worthy error — not hang, not panic.
    for algorithm in [ShuffleAlgorithm::MESQ_SR, ShuffleAlgorithm::SESQ_SR] {
        let mut config = chaos_config(algorithm, FaultPlan::new());
        config.faults.ud_drop_probability = 0.35;
        let runtime = config.build_runtime(DeviceProfile::edr());
        let policy = RestartPolicy {
            max_restarts: 2,
            initial_backoff: us(50),
            max_backoff: us(200),
        };
        let report = run_shuffle_with_restart(
            &runtime,
            &config,
            policy,
            ROW,
            |_, node| {
                Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64)) as Arc<dyn Operator>
            },
            |_, _, _, _| {},
        );
        runtime.cluster().run();
        let rep = report.lock();
        let failure = rep
            .failure
            .clone()
            .unwrap_or_else(|| panic!("{algorithm}: permanent loss cannot succeed"));
        assert_eq!(rep.restarts, 2, "{algorithm}: must exhaust the budget");
        assert!(
            !matches!(failure, ShuffleError::Config(_)),
            "{algorithm}: loss must surface as a transport error, got {failure:?}"
        );
    }
}

#[test]
fn marathon_receiver_pause_exhausts_restart_budget() {
    // A pause longer than every attempt the budget allows: the RC
    // send/receive design sees RNR retries exhaust on each attempt and
    // must hand back the final typed error.
    let plan = FaultPlan::new().receiver_pause(1, us(10), SimDuration::from_millis(40));
    let config = chaos_config(ShuffleAlgorithm::MEMQ_SR, plan);
    let runtime = config.build_runtime(DeviceProfile::edr());
    let policy = RestartPolicy {
        max_restarts: 1,
        initial_backoff: us(50),
        max_backoff: us(200),
    };
    let report = run_shuffle_with_restart(
        &runtime,
        &config,
        policy,
        ROW,
        |_, node| {
            Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64)) as Arc<dyn Operator>
        },
        |_, _, _, _| {},
    );
    runtime.cluster().run();
    let rep = report.lock();
    assert!(
        rep.failure.is_some(),
        "a 40 ms pause defeats a 1-restart budget"
    );
    assert_eq!(rep.restarts, 1);
    assert_eq!(
        rep.attempt_errors.len(),
        2,
        "both attempts must report an error"
    );
}
