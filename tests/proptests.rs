//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use rshuffle_repro::engine::BackoffSchedule;
use rshuffle_repro::rshuffle::{
    default_partition_hash, MsgHeader, MsgKind, RowBatch, StreamState, TransmissionGroups,
    HEADER_LEN,
};
use rshuffle_repro::simnet::lru::LruSet;
use rshuffle_repro::simnet::{Resource, SimDuration, SimTime};

proptest! {
    /// The message header codec round-trips every field combination.
    #[test]
    fn msg_header_roundtrip(
        src in any::<u32>(),
        kind in 0u8..2,
        state in 0u8..2,
        payload_len in any::<u32>(),
        counter in any::<u64>(),
        remote_addr in any::<u64>(),
        epoch in any::<u16>(),
        src_tid in any::<u16>(),
    ) {
        let header = MsgHeader {
            src,
            kind: if kind == 0 { MsgKind::Data } else { MsgKind::Credit },
            state: if state == 0 { StreamState::MoreData } else { StreamState::Depleted },
            payload_len,
            counter,
            remote_addr,
            epoch,
            src_tid,
        };
        let mut bytes = [0u8; HEADER_LEN];
        header.encode(&mut bytes);
        prop_assert_eq!(MsgHeader::decode(&bytes), Ok(header));
    }

    /// Wire-header decoding is total: extreme counter values round-trip
    /// without truncation, short slices and garbage tags surface as
    /// [`ShuffleError::Corrupt`] instead of panicking, and trailing bytes
    /// beyond the header are ignored.
    #[test]
    fn msg_header_decode_is_total(
        cut in 0usize..HEADER_LEN,
        kind_tag in any::<u8>(),
        state_tag in any::<u8>(),
        tail in 0usize..64,
        payload_delta in 0u32..4,
        counter_delta in 0u64..4,
    ) {
        use rshuffle_repro::rshuffle::ShuffleError;

        // Edge-of-range values: payload_len and counter hugging their
        // type maxima must survive the codec bit-exactly (a truncating
        // cast in either direction would wrap these first).
        let header = MsgHeader {
            src: u32::MAX,
            kind: MsgKind::Data,
            state: StreamState::Depleted,
            payload_len: u32::MAX - payload_delta,
            counter: u64::MAX - counter_delta,
            remote_addr: u64::MAX,
            epoch: u16::MAX,
            src_tid: u16::MAX,
        };
        let mut bytes = vec![0u8; HEADER_LEN + tail];
        header.encode(&mut bytes);
        prop_assert_eq!(MsgHeader::decode(&bytes), Ok(header));

        // Any strict prefix of a header is corruption, not a panic.
        prop_assert!(matches!(
            MsgHeader::decode(&bytes[..cut]),
            Err(ShuffleError::Corrupt(_))
        ));

        // Unknown enum tags are corruption; known tags decode.
        bytes[4] = kind_tag;
        bytes[5] = state_tag;
        let decoded = MsgHeader::decode(&bytes);
        if kind_tag < 2 && state_tag < 2 {
            let h = decoded.clone();
            prop_assert!(h.is_ok());
            prop_assert_eq!(decoded.unwrap().payload_len, header.payload_len);
        } else {
            prop_assert!(matches!(decoded, Err(ShuffleError::Corrupt(_))));
        }
    }

    /// RowBatch preserves rows exactly, in order.
    #[test]
    fn row_batch_roundtrip(rows in prop::collection::vec(any::<[u8; 8]>(), 0..200)) {
        let mut batch = RowBatch::new(8, rows.len());
        for r in &rows {
            batch.push_row(r);
        }
        prop_assert_eq!(batch.rows(), rows.len());
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(batch.row(i), r.as_slice());
        }
        let collected: Vec<&[u8]> = batch.iter().collect();
        prop_assert_eq!(collected.len(), rows.len());
    }

    /// The LRU set agrees with a naive reference model.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..16,
        keys in prop::collection::vec(0u64..32, 1..300),
    ) {
        let mut lru = LruSet::new(capacity);
        let mut model: Vec<u64> = Vec::new(); // Front = most recent.
        for &k in &keys {
            let hit = lru.touch(k);
            let model_hit = model.contains(&k);
            prop_assert_eq!(hit, model_hit, "key {} divergence", k);
            model.retain(|&x| x != k);
            model.insert(0, k);
            model.truncate(capacity);
            prop_assert_eq!(lru.len(), model.len());
        }
    }

    /// Repartition groups cover every node but the sender, exactly once.
    #[test]
    fn repartition_groups_partition_the_cluster(n in 2usize..32, me_raw in 0usize..32) {
        let me = me_raw % n;
        let g = TransmissionGroups::repartition(me, n);
        prop_assert_eq!(g.len(), n - 1);
        let mut seen: Vec<usize> = g.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..n).filter(|&p| p != me).collect();
        prop_assert_eq!(seen, expected);
        prop_assert!(!g.targets(me));
    }

    /// The partition hash spreads arbitrary keys across groups without
    /// leaving any group starved (within loose statistical bounds).
    #[test]
    fn partition_hash_spreads_keys(seed in any::<u64>()) {
        let groups = 8u64;
        let mut counts = [0u64; 8];
        for i in 0..4096u64 {
            let key = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut row = [0u8; 16];
            row[0..8].copy_from_slice(&key.to_le_bytes());
            counts[(default_partition_hash(&row) % groups) as usize] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            prop_assert!((256..=1024).contains(&c), "group {} got {}", g, c);
        }
    }

    /// A FIFO resource never overlaps reservations and never loses time.
    #[test]
    fn resource_reservations_are_fifo_and_exact(
        durations in prop::collection::vec(1u64..10_000, 1..100),
    ) {
        let mut r = Resource::new();
        let mut prev_end = SimTime::ZERO;
        let mut total = 0u64;
        for &d in &durations {
            let res = r.reserve(SimTime::ZERO, SimDuration::from_nanos(d));
            prop_assert!(res.start >= prev_end || prev_end == SimTime::ZERO);
            prop_assert_eq!((res.end - res.start).as_nanos(), d);
            prop_assert!(res.start >= prev_end);
            prev_end = res.end;
            total += d;
        }
        prop_assert_eq!(r.busy_total().as_nanos(), total);
        prop_assert_eq!(prev_end.as_nanos(), total, "back-to-back work leaves no gaps");
    }

    /// Virtual-time arithmetic is associative over mixed operations.
    #[test]
    fn sim_time_arithmetic(a in 0u64..1 << 40, b in 0u64..1 << 20, c in 0u64..1 << 20) {
        let t = SimTime::from_nanos(a);
        let d1 = SimDuration::from_nanos(b);
        let d2 = SimDuration::from_nanos(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert_eq!(((t + d1) - t), d1);
        prop_assert_eq!((t + d1 + d2) - (t + d1), d2);
    }

    /// Every u64 lands in a log-linear bucket that contains it, buckets
    /// are monotone in the value, and for values past the linear range
    /// the bucket is never wider than 1/16th of the value (the 6.25%
    /// quantization-error contract of the latency histograms).
    #[test]
    fn histogram_buckets_contain_and_bound_values(raw in any::<u64>(), shift in 0u32..64) {
        use rshuffle_obs::metrics::{bucket_index, bucket_lower_bound, bucket_upper_bound};
        // Mix small and huge magnitudes: `any::<u64>()` almost never
        // produces small values, so scale by a random shift.
        let v = raw >> shift;
        let i = bucket_index(v);
        let lb = bucket_lower_bound(i);
        let ub = bucket_upper_bound(i);
        prop_assert!(lb <= v && v <= ub, "value {} outside bucket [{}, {}]", v, lb, ub);
        if v < 16 {
            prop_assert_eq!(lb, ub, "sub-16 values get exact buckets");
        } else if ub < u64::MAX {
            prop_assert!(
                (ub - lb) as u128 * 16 <= lb as u128 + 16,
                "bucket [{}, {}] wider than 6.25% of its base", lb, ub
            );
        }
        // Monotone: the next value up never maps to an earlier bucket.
        if v < u64::MAX {
            prop_assert!(bucket_index(v + 1) >= i);
        }
    }

    /// Merging two histogram snapshots is exactly equivalent to having
    /// recorded both value streams into one histogram, and merge is
    /// commutative with the empty snapshot as identity.
    #[test]
    fn histogram_merge_equals_combined_recording(
        xs in prop::collection::vec(0u64..1 << 48, 0..100),
        ys in prop::collection::vec(0u64..1 << 48, 0..100),
    ) {
        use rshuffle_obs::{Histogram, HistogramSnapshot};
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for &x in &xs { a.record(x); combined.record(x); }
        for &y in &ys { b.record(y); combined.record(y); }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        if !xs.is_empty() || !ys.is_empty() {
            prop_assert_eq!(&ab, &combined.snapshot());
        }
        prop_assert_eq!(&ab.count, &ba.count);
        prop_assert_eq!(&ab.buckets, &ba.buckets);
        let mut id = sa.clone();
        id.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&id, &sa);
    }

    /// Percentile estimates stay inside [min, max], are monotone in the
    /// quantile, and land within the quantization bound (6.25% + integer
    /// slack) of the exact order statistic.
    #[test]
    fn histogram_percentiles_track_order_statistics(
        values in prop::collection::vec(1u64..1 << 40, 1..200),
    ) {
        use rshuffle_obs::Histogram;
        let h = Histogram::new();
        for &v in &values { h.record(v); }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = snap.percentile(q);
            prop_assert!(est >= sorted[0] && est <= sorted[sorted.len() - 1]);
            prop_assert!(est >= prev, "percentile must be monotone in q");
            prev = est;
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let err = est.abs_diff(truth);
            prop_assert!(
                err as u128 * 16 <= truth as u128 + 16,
                "q={} estimate {} too far from exact {}", q, est, truth
            );
        }
    }
}

/// Shuffling a random workload through random multicast groups delivers
/// every row to exactly the nodes of its hashed group (a smaller, randomized
/// version of the end-to-end suite; kept to a few cases for runtime).
#[test]
fn random_multicast_groups_deliver_exactly() {
    use parking_lot::Mutex;
    use rshuffle_repro::engine::drive_to_sink;
    use rshuffle_repro::rshuffle::{
        CostModel, Exchange, ExchangeConfig, Operator, ReceiveOperator, ShuffleAlgorithm,
        ShuffleOperator,
    };
    use rshuffle_repro::simnet::{Cluster, DeviceProfile, SimContext};
    use rshuffle_repro::verbs::VerbsRuntime;
    use std::sync::Arc;

    struct Source {
        rows: Vec<Mutex<Vec<[u8; 16]>>>,
    }

    impl Operator for Source {
        fn next(
            &self,
            _sim: &SimContext,
            tid: usize,
        ) -> rshuffle_repro::rshuffle::Result<(StreamState, RowBatch)> {
            let mut batch = RowBatch::new(16, 128);
            let mut q = self.rows[tid].lock();
            for _ in 0..128 {
                match q.pop() {
                    Some(r) => batch.push_row(r.as_slice()),
                    None => return Ok((StreamState::Depleted, batch)),
                }
            }
            Ok((StreamState::MoreData, batch))
        }
    }

    for seed in [3u64, 17, 99] {
        let nodes = 4;
        let threads = 2;
        // Random (but valid) multicast groups per sender, derived from the
        // seed: group k of node s targets a nonempty subset.
        let mk_groups = |s: usize| {
            let mut gs = Vec::new();
            let mut x = seed.wrapping_mul(s as u64 + 1).wrapping_add(7);
            for _ in 0..3 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let mut members: Vec<usize> = (0..nodes)
                    .filter(|&p| p != s && (x >> p) & 1 == 1)
                    .collect();
                if members.is_empty() {
                    members.push((s + 1) % nodes);
                }
                gs.push(members);
            }
            TransmissionGroups::new(gs)
        };
        let groups: Vec<TransmissionGroups> = (0..nodes).map(mk_groups).collect();

        let cluster = Cluster::new(nodes, DeviceProfile::edr());
        let runtime = VerbsRuntime::new(cluster);
        let mut config =
            ExchangeConfig::with_groups(ShuffleAlgorithm::MEMQ_SR, threads, groups.clone());
        config.message_size = 4096;
        let exchange = Exchange::build(&runtime, &config).expect("builds");
        let cost = CostModel::from_profile(runtime.profile());

        let mut expected: Vec<Vec<[u8; 16]>> = vec![Vec::new(); nodes];
        let mut sources = Vec::new();
        for (node, node_groups) in groups.iter().enumerate() {
            let mut per_thread: Vec<Vec<[u8; 16]>> = vec![Vec::new(); threads];
            for i in 0..3000u64 {
                let mut row = [0u8; 16];
                let key = seed ^ (node as u64) << 32 ^ i.wrapping_mul(0x2545F4914F6CDD1D);
                row[0..8].copy_from_slice(&key.to_le_bytes());
                row[8..16].copy_from_slice(&i.to_le_bytes());
                per_thread[(i % threads as u64) as usize].push(row);
                let g = (default_partition_hash(&row) % node_groups.len() as u64) as usize;
                for &dest in node_groups.group(g) {
                    expected[dest].push(row);
                }
            }
            sources.push(Arc::new(Source {
                rows: per_thread.into_iter().map(Mutex::new).collect(),
            }));
        }

        let received: Arc<Vec<Mutex<Vec<[u8; 16]>>>> =
            Arc::new((0..nodes).map(|_| Mutex::new(Vec::new())).collect());
        for node in 0..nodes {
            let shuffle = Arc::new(ShuffleOperator::with_lanes(
                sources[node].clone(),
                exchange.send[node].clone(),
                groups[node].clone(),
                threads,
                cost.clone(),
            ));
            drive_to_sink(
                runtime.cluster(),
                node,
                &format!("s{node}"),
                shuffle,
                threads,
                |_, _| {},
            );
            let receive = Arc::new(ReceiveOperator::with_lanes(
                exchange.recv[node].clone(),
                16,
                256,
                threads,
                cost.clone(),
            ));
            let sink = received.clone();
            drive_to_sink(
                runtime.cluster(),
                node,
                &format!("r{node}"),
                receive,
                threads,
                move |_, batch| {
                    let mut out = sink[node].lock();
                    for row in batch.iter() {
                        out.push(row.try_into().unwrap());
                    }
                },
            );
        }
        runtime.cluster().run();
        for node in 0..nodes {
            let mut got = received[node].lock().clone();
            let mut want = expected[node].clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "seed {seed}, node {node}");
        }
    }
}

/// UD flow control under arbitrary loss schedules: whatever burst-loss
/// windows and reorder probability the fabric throws at the SQ/SR design,
/// (a) the credit protocol never overruns the granted receive window — a
/// healthy receiver never sees a datagram arrive without a posted receive,
/// which is the observable form of "credits never go negative" — and (b)
/// message counting detects every dropped data datagram: a query either
/// delivers every row exactly once (after bounded restarts) or surfaces a
/// typed transport error. Silent row loss is the one outcome that must be
/// impossible.
///
/// The vendored proptest shim has a fixed case count, so this drives the
/// full stack over a hand-rolled deterministic sample of 12 schedules.
#[test]
fn ud_loss_schedules_never_overrun_credit_or_lose_rows_silently() {
    use parking_lot::Mutex;
    use rshuffle_repro::engine::{run_shuffle_with_restart, Generator, RestartPolicy};
    use rshuffle_repro::rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm, ShuffleError};
    use rshuffle_repro::simnet::DeviceProfile;
    use rshuffle_repro::verbs::{FaultConfig, FaultPlan};
    use std::collections::HashMap;
    use std::sync::Arc;

    let nodes = 2;
    let threads = 2;
    let rows_per_thread = 400;
    let us = SimDuration::from_micros;
    let mut rng = TestRng::deterministic("proptests::ud_loss_schedules");
    for case in 0..12 {
        let seed = rng.next_u64();
        let n_windows = (rng.next_u64() % 3) as usize;
        let windows: Vec<(u64, u64, f64, usize)> = (0..n_windows)
            .map(|_| {
                (
                    rng.next_u64() % 200,                          // start µs
                    1 + rng.next_u64() % 99,                       // duration µs
                    0.05 + (rng.next_u64() % 950) as f64 / 1000.0, // drop p in 0.05..1.0
                    (rng.next_u64() % 2) as usize,                 // victim node
                )
            })
            .collect();
        let reorder = (rng.next_u64() % 300) as f64 / 1000.0;
        let mut plan = FaultPlan::new();
        for &(at, dur, p, node) in &windows {
            plan = plan.ud_loss_burst(node, us(at), us(dur), p);
        }
        let mut config = ExchangeConfig::repartition(ShuffleAlgorithm::SESQ_SR, nodes, threads);
        config.stall_timeout = SimDuration::from_millis(2);
        config.depleted_timeout = us(500);
        config.faults = FaultConfig {
            seed,
            ud_reorder_probability: reorder,
            plan,
            ..FaultConfig::default()
        };
        let runtime = config.build_runtime(DeviceProfile::edr());
        let delivered: Arc<Mutex<HashMap<u32, Vec<[u8; 16]>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let d = delivered.clone();
        let report = run_shuffle_with_restart(
            &runtime,
            &config,
            RestartPolicy {
                max_restarts: 3,
                initial_backoff: us(50),
                max_backoff: us(500),
            },
            16,
            move |_, node| {
                Arc::new(Generator::new(rows_per_thread, threads, node as u64)) as Arc<dyn Operator>
            },
            move |attempt, _, _, batch| {
                let mut map = d.lock();
                let rows = map.entry(attempt).or_default();
                for row in batch.iter() {
                    rows.push(row.try_into().unwrap());
                }
            },
        );
        runtime.cluster().run();
        let rep = report.lock().clone();
        let stats = runtime.stats();
        match &rep.failure {
            None => {
                // Success means exactly-once: the winning attempt holds the
                // full generated multiset, drops notwithstanding.
                let mut expected = Vec::new();
                for node in 0..nodes {
                    for tid in 0..threads {
                        for seq in 0..rows_per_thread {
                            expected.push(Generator::row(node as u64, tid, seq));
                        }
                    }
                }
                expected.sort_unstable();
                let mut got = delivered
                    .lock()
                    .get(&rep.restarts)
                    .cloned()
                    .unwrap_or_default();
                got.sort_unstable();
                prop_assert_eq!(
                    got,
                    expected,
                    "case {}: loss schedule produced silent row corruption (restarts: {}, drops: {})",
                    case,
                    rep.restarts,
                    stats.ud_dropped_in_network
                );
            }
            Some(e) => {
                prop_assert!(
                    !matches!(e, ShuffleError::Config(_)),
                    "case {}: loss must surface as a transport error, got {:?}",
                    case,
                    e
                );
            }
        }
        if rep.succeeded() && rep.restarts == 0 {
            // No attempt was torn down mid-stream, so every datagram that
            // reached a receiver must have found a posted receive: the
            // absolute-credit window was never overrun even when credit
            // datagrams were dropped or reordered.
            prop_assert_eq!(
                stats.ud_unmatched,
                0,
                "case {}: credit window overrun: {} unmatched datagrams (drops: {}, reorders: {})",
                case,
                stats.ud_unmatched,
                stats.ud_dropped_in_network,
                stats.ud_reordered
            );
        }
    }
}

/// Deterministic pseudo-shuffle key (splitmix64 finalizer) so credit
/// delivery order can be permuted reproducibly from a proptest seed.
fn shuffle_key(seed: u64, v: u64) -> u64 {
    let mut z = seed ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    /// Model of the SQ/SR UD flow-control protocol (paper §4.4.1): the
    /// receiver announces an *absolute* cumulative credit counter each time
    /// it posts a batch of receives, and the sender max-merges whatever
    /// credit messages actually arrive. Under arbitrary credit-message
    /// drops and reordering the sender must never transmit a datagram
    /// without a posted receive (credit never goes negative), and the
    /// end-of-stream message count must flag every dropped data datagram.
    #[test]
    fn absolute_credit_max_merge_never_overruns(
        grants in prop::collection::vec(1u64..64, 1..40),
        drop_credit in prop::collection::vec(any::<bool>(), 1..40),
        reorder_seed in any::<u64>(),
        drop_data in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        // Receiver side: post receives in batches, announcing the running
        // total as the credit counter.
        let mut posted = 0u64;
        let mut announcements = Vec::with_capacity(grants.len());
        for &g in &grants {
            posted += g;
            announcements.push(posted);
        }
        // The fabric drops some credit messages (never the last one, which
        // in the real protocol is retransmitted with the Depleted
        // writeback) and delivers the rest in arbitrary order.
        let last = *announcements.last().unwrap();
        let mut delivered: Vec<u64> = announcements
            .iter()
            .copied()
            .zip(drop_credit.iter().cycle())
            .filter(|&(c, &d)| c == last || !d)
            .map(|(c, _)| c)
            .collect();
        delivered.sort_by_key(|&c| shuffle_key(reorder_seed, c));

        // Sender side: max-merge the absolute counter, transmit while
        // credit remains.
        let mut granted = 0u64;
        let mut sent = 0u64;
        for c in delivered {
            granted = granted.max(c);
            while sent < granted {
                sent += 1;
                prop_assert!(
                    sent <= posted,
                    "datagram {} transmitted with only {} receives posted",
                    sent,
                    posted
                );
            }
        }
        // Dropped or reordered credit can stall the sender but never push
        // consumption past what the receiver granted.
        prop_assert!(sent <= posted);
        // Because every announcement eventually arrives (the writeback
        // path), the sender drains the whole stream.
        prop_assert_eq!(sent, posted);

        // Data-loss detection: the sender stamps `sent` into its Depleted
        // header; the receiver counts arrivals. Any dropped data datagram
        // must produce a mismatch — silent loss is impossible.
        let lost = (0..sent)
            .filter(|i| drop_data[(*i as usize) % drop_data.len()])
            .count() as u64;
        let received = sent - lost;
        prop_assert_eq!(
            received == sent,
            lost == 0,
            "message counting must detect exactly the dropped datagrams"
        );
    }
}

proptest! {
    /// The recovery layer's reconnect/restart backoff: delays start at
    /// `initial`, double each step, never exceed `max`, and are monotone
    /// non-decreasing until the cap is reached — after which they stay
    /// pinned at the cap. `reset` rewinds to the first delay.
    #[test]
    fn backoff_schedule_is_capped_and_monotone(
        initial_ns in 1u64..100_000,
        extra_ns in 0u64..1_000_000,
        steps in 1usize..64,
    ) {
        let initial = SimDuration::from_nanos(initial_ns);
        let max = SimDuration::from_nanos(initial_ns + extra_ns);
        let mut sched = BackoffSchedule::new(initial, max);
        let mut prev = SimDuration::from_nanos(0);
        let mut capped = false;
        for step in 0..steps {
            let d = sched.next();
            prop_assert!(d <= max, "step {} delay {:?} exceeds cap {:?}", step, d, max);
            prop_assert!(d >= prev, "step {} delay {:?} shrank below {:?}", step, d, prev);
            if step == 0 {
                prop_assert_eq!(d, initial, "the schedule must start at the initial delay");
            }
            if capped {
                prop_assert_eq!(d, max, "once capped, the delay must stay at the cap");
            }
            capped = d == max;
            prev = d;
        }
        sched.reset();
        prop_assert_eq!(sched.next(), initial, "reset must rewind to the initial delay");
    }

    /// Jittered schedules are pure functions of their seed: two
    /// schedules built with the same parameters agree delay-for-delay,
    /// and every jittered delay stays within `[base, max]` where `base`
    /// is the unjittered schedule's delay at the same step.
    #[test]
    fn jittered_backoff_is_deterministic_per_seed_and_bounded(
        initial_ns in 1u64..100_000,
        extra_ns in 0u64..1_000_000,
        seed in any::<u64>(),
        steps in 1usize..64,
    ) {
        let initial = SimDuration::from_nanos(initial_ns);
        let max = SimDuration::from_nanos(initial_ns + extra_ns);
        let mut a = BackoffSchedule::with_jitter(initial, max, seed);
        let mut b = BackoffSchedule::with_jitter(initial, max, seed);
        let mut unjittered = BackoffSchedule::new(initial, max);
        for step in 0..steps {
            let da = a.next();
            let db = b.next();
            prop_assert_eq!(da, db, "same-seed schedules diverged at step {}", step);
            let floor = unjittered.next();
            prop_assert!(
                da >= floor && da <= max,
                "step {}: jittered delay {:?} outside [{:?}, {:?}]",
                step, da, floor, max
            );
        }
    }

    /// A probe loop driven by the schedule can never hang: spending a
    /// reconnect budget of `n` attempts sleeps at most `n × max` of
    /// virtual time before the loop exits — which the recovery layer
    /// then converts into the typed
    /// [`ShuffleError::RetryBudgetExhausted`] rather than retrying
    /// forever.
    #[test]
    fn backoff_budget_exhaustion_is_time_bounded(
        initial_ns in 1u64..100_000,
        extra_ns in 0u64..1_000_000,
        seed in any::<u64>(),
        budget in 1u32..32,
    ) {
        let initial = SimDuration::from_nanos(initial_ns);
        let max = SimDuration::from_nanos(initial_ns + extra_ns);
        let mut sched = BackoffSchedule::with_jitter(initial, max, seed);
        let mut slept = SimDuration::from_nanos(0);
        let mut attempts = 0u32;
        while attempts < budget {
            attempts += 1;
            slept += sched.next();
        }
        prop_assert_eq!(attempts, budget);
        prop_assert!(
            slept <= max * (budget as u64),
            "budget {} slept {:?}, more than {} × {:?}",
            budget, slept, budget, max
        );
    }
}
