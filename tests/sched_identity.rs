//! Scheduler transparency: with a concurrency limit of 1 and default
//! weights, driving a query through `run_workload` + `Scheduler` must
//! be byte-identical in virtual time to the direct
//! `run_shuffle_with_restart` path, for all six paper algorithms.
//!
//! "Byte-identical" is checked on the strongest observable artifacts we
//! have: the full metrics snapshot and the Chrome trace, after removing
//! only the scheduler's own additive surface (`sched.*` series and the
//! query_admitted/deferred/completed instants). Everything else — every
//! NIC reservation, completion timestamp, credit stall, retry — must
//! match to the byte, which it only can if admission consumed zero
//! virtual time and the weighted-fair arbiter with a single weight-1
//! flow reproduces the untagged schedule exactly.

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_obs::trace::chrome_trace;
use rshuffle_repro::engine::{
    run_shuffle_with_restart, run_workload, Generator, QuerySpec, RestartPolicy,
};
use rshuffle_repro::rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_repro::sched::{Scheduler, SchedulerConfig};
use rshuffle_repro::simnet::DeviceProfile;
use serde::Value;

const NODES: usize = 3;
const THREADS: usize = 2;
const ROWS_PER_THREAD: usize = 300;
const ROW: usize = 16;

/// What one run leaves behind, with the scheduler's additive surface
/// stripped so the two paths are comparable.
struct RunArtifacts {
    rows: Vec<[u8; ROW]>,
    snapshot: String,
    trace: String,
}

/// Renders the metrics snapshot with every `sched.*` series and the
/// workload driver's query-latency histogram removed — the scheduler
/// path's whole additive surface.
fn strip_sched_series(mut snapshot: rshuffle_obs::Snapshot) -> String {
    let additive = |key: &str| {
        key.starts_with("sched.") || key.starts_with(rshuffle_obs::names::ENGINE_QUERY_LATENCY_NS)
    };
    snapshot.counters.retain(|(key, _)| !additive(key));
    snapshot.histograms.retain(|(key, _)| !additive(key));
    snapshot.to_json()
}

/// Re-serializes the Chrome trace without the scheduler's admission
/// instants (the only records the scheduler adds).
fn strip_sched_events(trace: Value) -> String {
    let Value::Array(events) = trace else {
        panic!("chrome trace is a JSON array");
    };
    let kept: Vec<Value> = events
        .into_iter()
        .filter(|event| {
            let Value::Object(fields) = event else {
                return true;
            };
            let name = fields.iter().find_map(|(key, value)| match value {
                Value::Str(s) if key == "name" => Some(s.as_str()),
                _ => None,
            });
            !matches!(
                name,
                Some("query_admitted" | "query_deferred" | "query_completed")
            )
        })
        .collect();
    serde_json::to_string(&Value::Array(kept)).expect("trace serializes")
}

fn config_for(algorithm: ShuffleAlgorithm) -> ExchangeConfig {
    let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
    config.message_size = 4096;
    config
}

fn collect(
    delivered: &Arc<Mutex<Vec<[u8; ROW]>>>,
) -> impl Fn(&rshuffle_repro::rshuffle::RowBatch) + Send + Sync + 'static {
    let delivered = delivered.clone();
    move |batch| {
        let mut rows = delivered.lock();
        for row in batch.iter() {
            rows.push(row.try_into().expect("16-byte row"));
        }
    }
}

fn run_direct(algorithm: ShuffleAlgorithm) -> RunArtifacts {
    let config = config_for(algorithm);
    let runtime = config.build_runtime(DeviceProfile::edr());
    let delivered: Arc<Mutex<Vec<[u8; ROW]>>> = Arc::new(Mutex::new(Vec::new()));
    let push = collect(&delivered);
    let report = run_shuffle_with_restart(
        &runtime,
        &config,
        RestartPolicy::default(),
        ROW,
        |_, node| Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64)) as Arc<dyn Operator>,
        move |_, _, _, batch| push(batch),
    );
    runtime.cluster().run();
    assert!(
        report.lock().succeeded(),
        "{algorithm}: direct run failed: {:?}",
        report.lock().failure
    );
    let obs = runtime.obs();
    let mut rows = delivered.lock().clone();
    rows.sort_unstable();
    RunArtifacts {
        rows,
        snapshot: strip_sched_series(obs.metrics.snapshot()),
        trace: strip_sched_events(chrome_trace(&obs.recorder)),
    }
}

fn run_scheduled(algorithm: ShuffleAlgorithm) -> RunArtifacts {
    let config = config_for(algorithm);
    let runtime = config.build_runtime(DeviceProfile::edr());
    let scheduler = Scheduler::new(
        &runtime,
        SchedulerConfig {
            max_concurrent: 1,
            ..SchedulerConfig::default()
        },
    );
    let delivered: Arc<Mutex<Vec<[u8; ROW]>>> = Arc::new(Mutex::new(Vec::new()));
    let push = collect(&delivered);
    // Query id 0: flow 0, endpoint-id base 0 — the very same endpoint
    // ids the direct path allocates.
    let handles = run_workload(
        &runtime,
        &scheduler,
        vec![QuerySpec::new(0, config, ROW)],
        |_, _, node| Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64)) as Arc<dyn Operator>,
        move |_, _, _, _, batch| push(batch),
    );
    runtime.cluster().run();
    let report = handles[0].report.lock();
    assert!(
        report.succeeded(),
        "{algorithm}: scheduled run failed: {:?}",
        report.failure
    );
    let obs = runtime.obs();
    let mut rows = delivered.lock().clone();
    rows.sort_unstable();
    RunArtifacts {
        rows,
        snapshot: strip_sched_series(obs.metrics.snapshot()),
        trace: strip_sched_events(chrome_trace(&obs.recorder)),
    }
}

/// The headline acceptance criterion: limit-1, weightless scheduling is
/// invisible — same rows, same metrics, same trace, for all six
/// algorithms.
#[test]
fn limit_one_scheduler_is_byte_identical_to_direct_path() {
    for algorithm in ShuffleAlgorithm::ALL {
        let direct = run_direct(algorithm);
        let scheduled = run_scheduled(algorithm);
        assert_eq!(
            direct.rows.len(),
            NODES * THREADS * ROWS_PER_THREAD,
            "{algorithm}: direct run dropped rows"
        );
        assert_eq!(
            direct.rows, scheduled.rows,
            "{algorithm}: delivered multisets diverge"
        );
        if direct.snapshot != scheduled.snapshot {
            for (a, b) in direct.snapshot.lines().zip(scheduled.snapshot.lines()) {
                if a != b {
                    eprintln!("direct:    {a}\nscheduled: {b}");
                }
            }
        }
        assert_eq!(
            direct.snapshot, scheduled.snapshot,
            "{algorithm}: metrics snapshots diverge once sched.* series are removed"
        );
        assert_eq!(
            direct.trace, scheduled.trace,
            "{algorithm}: Chrome traces diverge once admission instants are removed"
        );
    }
}
