//! Tier-1 determinism tests for the observability layer: the same
//! configuration must produce byte-identical metrics snapshots and
//! Chrome traces, for every shuffle algorithm. This is the contract
//! that makes flight-recorder diffs meaningful: any divergence between
//! two runs is a real behavioural difference, never scheduler noise.

use std::sync::Arc;

use rshuffle_repro::engine::{drive_to_sink, Generator};
use rshuffle_repro::rshuffle::{
    CostModel, Exchange, ExchangeConfig, ReceiveOperator, ShuffleAlgorithm, ShuffleOperator,
};
use rshuffle_repro::simnet::{Cluster, DeviceProfile};
use rshuffle_repro::verbs::{FaultConfig, VerbsRuntime};

/// Runs a small repartition and returns the serialized observability
/// artifacts: (metrics snapshot JSON, Chrome-trace JSON).
fn run_observed(algorithm: ShuffleAlgorithm) -> (String, String) {
    let nodes = 2;
    let threads = 2;
    let rows_per_thread = 2_000;
    let cluster = Cluster::new(nodes, DeviceProfile::edr());
    // Fault injection exercises the RNG-dependent paths (UD reorder),
    // which is exactly where nondeterminism would sneak in.
    let runtime = VerbsRuntime::with_faults(
        cluster,
        FaultConfig {
            ud_reorder_probability: 0.1,
            ..FaultConfig::default()
        },
    );
    let config = ExchangeConfig::repartition(algorithm, nodes, threads);
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());
    let mut stats = Vec::new();
    for node in 0..nodes {
        let source = Arc::new(Generator::new(rows_per_thread, threads, node as u64));
        let shuffle = Arc::new(ShuffleOperator::with_lanes(
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            threads,
            cost.clone(),
        ));
        stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("s{node}"),
            shuffle,
            threads,
            |_, _| {},
        ));
        let receive = Arc::new(ReceiveOperator::with_lanes(
            exchange.recv[node].clone(),
            16,
            2048,
            threads,
            cost.clone(),
        ));
        stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("r{node}"),
            receive,
            threads,
            |_, _| {},
        ));
    }
    runtime.cluster().run();
    for s in &stats {
        assert!(
            s.lock().errors.is_empty(),
            "{algorithm}: worker errors: {:?}",
            s.lock().errors
        );
    }
    let obs = runtime.obs();
    (obs.snapshot_json(), obs.chrome_trace_json())
}

#[test]
fn snapshots_and_traces_are_deterministic_for_every_algorithm() {
    for algorithm in ShuffleAlgorithm::ALL {
        let (snap_a, trace_a) = run_observed(algorithm);
        let (snap_b, trace_b) = run_observed(algorithm);
        assert_eq!(
            snap_a, snap_b,
            "{algorithm}: same-seed runs must produce byte-identical metrics snapshots"
        );
        assert_eq!(
            trace_a, trace_b,
            "{algorithm}: same-seed runs must produce byte-identical Chrome traces"
        );
    }
}

#[test]
fn snapshot_covers_required_series() {
    // One representative SR run must surface the headline metrics the
    // paper's figures are built from.
    let (snap, trace) = run_observed(ShuffleAlgorithm::MESQ_SR);
    for name in [
        "endpoint.bytes_sent",
        "endpoint.messages_sent",
        "endpoint.bytes_received",
        "endpoint.credit_stalls",
        "nic.work_requests",
        "nic.qp_cache_hits",
        "verbs.msg_latency_ns",
        "engine.rows",
    ] {
        assert!(snap.contains(name), "snapshot missing series {name:?}");
    }
    // The trace must be a Chrome-trace array with the mandatory keys.
    assert!(trace.trim_start().starts_with('['));
    assert!(trace.trim_end().ends_with(']'));
    for key in ["\"name\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""] {
        assert!(trace.contains(key), "trace missing key {key}");
    }
}
