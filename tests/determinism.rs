//! Tier-1 determinism tests for the observability layer: the same
//! configuration must produce byte-identical metrics snapshots and
//! Chrome traces, for every shuffle algorithm. This is the contract
//! that makes flight-recorder diffs meaningful: any divergence between
//! two runs is a real behavioural difference, never scheduler noise.

use std::sync::Arc;

use rshuffle_repro::engine::{drive_to_sink, Generator};
use rshuffle_repro::rshuffle::{
    CostModel, Exchange, ExchangeConfig, ReceiveOperator, ShuffleAlgorithm, ShuffleOperator,
};
use rshuffle_repro::simnet::{Cluster, DeviceProfile};
use rshuffle_repro::verbs::{FaultConfig, VerbsRuntime};

/// Runs a small repartition and returns the serialized observability
/// artifacts: (metrics snapshot JSON, Chrome-trace JSON).
fn run_observed(algorithm: ShuffleAlgorithm) -> (String, String) {
    let (snap, trace, _) = run_observed_staged(algorithm, true, false);
    (snap, trace)
}

/// Like [`run_observed`], with the stage instrumentation toggled:
/// `histograms` controls the per-stage latency histograms, `spans` the
/// flight-recorder stage spans. Returns (snapshot JSON, trace JSON,
/// final virtual time ns).
fn run_observed_staged(
    algorithm: ShuffleAlgorithm,
    histograms: bool,
    spans: bool,
) -> (String, String, u64) {
    let nodes = 2;
    let threads = 2;
    let rows_per_thread = 2_000;
    let cluster = Cluster::new(nodes, DeviceProfile::edr());
    // Fault injection exercises the RNG-dependent paths (UD reorder),
    // which is exactly where nondeterminism would sneak in.
    let runtime = VerbsRuntime::with_faults(
        cluster,
        FaultConfig {
            ud_reorder_probability: 0.1,
            ..FaultConfig::default()
        },
    );
    runtime.obs().set_stage_histograms(histograms);
    runtime.obs().set_stage_spans(spans);
    let config = ExchangeConfig::repartition(algorithm, nodes, threads);
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());
    let mut stats = Vec::new();
    for node in 0..nodes {
        let source = Arc::new(Generator::new(rows_per_thread, threads, node as u64));
        let shuffle = Arc::new(ShuffleOperator::with_lanes(
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            threads,
            cost.clone(),
        ));
        stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("s{node}"),
            shuffle,
            threads,
            |_, _| {},
        ));
        let receive = Arc::new(ReceiveOperator::with_lanes(
            exchange.recv[node].clone(),
            16,
            2048,
            threads,
            cost.clone(),
        ));
        stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("r{node}"),
            receive,
            threads,
            |_, _| {},
        ));
    }
    runtime.cluster().run();
    for s in &stats {
        assert!(
            s.lock().errors.is_empty(),
            "{algorithm}: worker errors: {:?}",
            s.lock().errors
        );
    }
    let obs = runtime.obs();
    (
        obs.snapshot_json(),
        obs.chrome_trace_json(),
        runtime.kernel().now().as_nanos(),
    )
}

#[test]
fn snapshots_and_traces_are_deterministic_for_every_algorithm() {
    for algorithm in ShuffleAlgorithm::ALL {
        let (snap_a, trace_a) = run_observed(algorithm);
        let (snap_b, trace_b) = run_observed(algorithm);
        assert_eq!(
            snap_a, snap_b,
            "{algorithm}: same-seed runs must produce byte-identical metrics snapshots"
        );
        assert_eq!(
            trace_a, trace_b,
            "{algorithm}: same-seed runs must produce byte-identical Chrome traces"
        );
    }
}

/// Zero-perturbation contract of the stage instrumentation: recording
/// stage histograms and stage spans must not move a single virtual-time
/// event. Same-seed runs with recording fully on vs fully off must end
/// at the same virtual instant and agree byte-for-byte on every metric
/// series outside the `stage.` namespace itself.
#[test]
fn stage_recording_is_virtual_time_invisible_for_every_algorithm() {
    for algorithm in ShuffleAlgorithm::ALL {
        let (snap_on, _, end_on) = run_observed_staged(algorithm, true, true);
        let (snap_off, _, end_off) = run_observed_staged(algorithm, false, false);
        assert_eq!(
            end_on, end_off,
            "{algorithm}: stage recording perturbed the final virtual time"
        );
        // Re-parse the snapshots and compare modulo the stage series:
        // with recording off those series must simply be absent, with
        // nothing else shifted.
        let strip = |json: &str| {
            let snap = parse_snapshot(json);
            snap.without_prefix("stage.").to_json()
        };
        assert_eq!(
            strip(&snap_on),
            strip(&snap_off),
            "{algorithm}: stage recording changed a non-stage metric series"
        );
        // And the instrumentation actually recorded something when on.
        assert!(
            snap_on.contains("stage.wr_batch_ns"),
            "{algorithm}: stage histograms enabled but no stage series recorded"
        );
        assert!(
            !snap_off.contains("\"stage."),
            "{algorithm}: disabled stage recording still registered stage series"
        );
    }
}

/// Rebuilds a [`rshuffle_obs::Snapshot`] from its JSON rendering (the
/// counters and histogram keys are enough for prefix filtering; the
/// full histograms are carried through verbatim).
fn parse_snapshot(json: &str) -> rshuffle_obs::Snapshot {
    let root = serde_json::from_str(json).expect("snapshot JSON parses");
    let serde::Value::Object(fields) = root else {
        panic!("snapshot root is an object");
    };
    let mut snap = rshuffle_obs::Snapshot::default();
    for (section, value) in fields {
        let serde::Value::Object(entries) = value else {
            panic!("snapshot section {section} is an object");
        };
        for (key, v) in entries {
            match section.as_str() {
                "counters" => {
                    let serde::Value::UInt(c) = v else {
                        panic!("counter {key} is numeric");
                    };
                    snap.counters.push((key, c));
                }
                "histograms" => {
                    // Prefix filtering only needs the key; reuse the
                    // rendered histogram via an empty placeholder and
                    // compare on the re-rendered JSON of the filtered
                    // key set plus counters.
                    let serde::Value::Object(hf) = v else {
                        panic!("histogram {key} is an object");
                    };
                    let get =
                        |k: &str| hf.iter().find(|(n, _)| n == k).map(|(_, val)| val.clone());
                    let num = |k: &str| match get(k) {
                        Some(serde::Value::UInt(u)) => u,
                        other => panic!("histogram {key}.{k}: {other:?}"),
                    };
                    let serde::Value::Array(bs) = get("buckets").expect("buckets") else {
                        panic!("histogram {key}.buckets is an array");
                    };
                    let buckets = bs
                        .into_iter()
                        .map(|b| {
                            let serde::Value::Array(pair) = b else {
                                panic!("bucket is a pair");
                            };
                            match (&pair[0], &pair[1]) {
                                (serde::Value::UInt(lb), serde::Value::UInt(n)) => (*lb, *n),
                                other => panic!("bucket pair: {other:?}"),
                            }
                        })
                        .collect();
                    let hist = rshuffle_obs::HistogramSnapshot {
                        count: num("count"),
                        sum: num("sum"),
                        min: num("min"),
                        max: num("max"),
                        buckets,
                    };
                    snap.histograms.push((key, hist));
                }
                other => panic!("unknown snapshot section {other}"),
            }
        }
    }
    snap
}

#[test]
fn snapshot_covers_required_series() {
    // One representative SR run must surface the headline metrics the
    // paper's figures are built from.
    let (snap, trace) = run_observed(ShuffleAlgorithm::MESQ_SR);
    for name in [
        "endpoint.bytes_sent",
        "endpoint.messages_sent",
        "endpoint.bytes_received",
        "endpoint.credit_stalls",
        "nic.work_requests",
        "nic.qp_cache_hits",
        "verbs.msg_latency_ns",
        "engine.rows",
    ] {
        assert!(snap.contains(name), "snapshot missing series {name:?}");
    }
    // The trace must be a Chrome-trace array with the mandatory keys.
    assert!(trace.trim_start().starts_with('['));
    assert!(trace.trim_end().ends_with(']'));
    for key in ["\"name\"", "\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""] {
        assert!(trace.contains(key), "trace missing key {key}");
    }
}
