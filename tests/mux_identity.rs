//! Identity and correctness contracts for the QP-multiplexing layer.
//!
//! The multiplexer only changes *which physical QP* carries a virtual
//! endpoint's traffic — never what is delivered. Two contracts pin that:
//!
//! * **Identity**: with a per-pair cap at or above every design's
//!   natural lane count the mux must not engage at all, and the whole
//!   run — metrics snapshot, delivered multiset, final virtual time —
//!   must be byte-identical to the direct path, with the protocol
//!   auditor finding nothing.
//! * **Correctness under sharing**: with the cap below the lane count
//!   the ME designs' lanes share physical QPs, yet every row still
//!   arrives exactly once, the auditor stays clean, and the mux reports
//!   fewer physical QPs than the natural wiring plus a nonzero
//!   lease-wait count.

use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_repro::engine::{drive_to_sink, Generator};
use rshuffle_repro::mux::MuxConfig;
use rshuffle_repro::rshuffle::{
    CostModel, Exchange, ExchangeConfig, ReceiveOperator, ShuffleAlgorithm, ShuffleOperator,
};
use rshuffle_repro::simnet::DeviceProfile;

const NODES: usize = 3;
const THREADS: usize = 2;
const ROWS_PER_THREAD: usize = 800;
const ROW: usize = 16;

struct MuxRun {
    snapshot: String,
    end_ns: u64,
    delivered: Vec<[u8; ROW]>,
    violations: usize,
    /// `(qp_count, natural_qps, lease_waits)`; zeros when the mux never
    /// engaged.
    mux_stats: (u64, u64, u64),
}

/// Runs one small repartition with an optional mux configuration and
/// returns everything the contracts compare.
fn run_mux(algorithm: ShuffleAlgorithm, mux: Option<MuxConfig>) -> MuxRun {
    let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
    config.message_size = 4096;
    config.mux = mux;
    let runtime = config.build_runtime(DeviceProfile::edr());
    let auditor = runtime.enable_audit();
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());
    let delivered: Arc<Mutex<Vec<[u8; ROW]>>> = Arc::new(Mutex::new(Vec::new()));
    let mut stats = Vec::new();
    for node in 0..NODES {
        let source = Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64));
        let shuffle = Arc::new(ShuffleOperator::with_lanes(
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            THREADS,
            cost.clone(),
        ));
        stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("s{node}"),
            shuffle,
            THREADS,
            |_, _| {},
        ));
        let receive = Arc::new(ReceiveOperator::with_lanes(
            exchange.recv[node].clone(),
            16,
            2048,
            THREADS,
            cost.clone(),
        ));
        let d = delivered.clone();
        stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("r{node}"),
            receive,
            THREADS,
            move |_, batch| {
                let mut rows = d.lock();
                for row in batch.iter() {
                    rows.push(row.try_into().expect("16-byte row"));
                }
            },
        ));
    }
    runtime.cluster().run();
    for s in &stats {
        assert!(
            s.lock().errors.is_empty(),
            "{algorithm}: worker errors: {:?}",
            s.lock().errors
        );
    }
    let violations = auditor.finalize(true).len();
    let mux_stats = exchange
        .mux
        .as_ref()
        .map_or((0, 0, 0), |m| (m.qp_count(), m.natural_qps(), m.lease_waits()));
    let mut delivered = Arc::try_unwrap(delivered)
        .expect("all workers joined")
        .into_inner();
    delivered.sort_unstable();
    MuxRun {
        snapshot: runtime.obs().snapshot_json(),
        end_ns: runtime.kernel().now().as_nanos(),
        delivered,
        violations,
        mux_stats,
    }
}

/// Every row the generators emit, cluster-wide, sorted.
fn expected_rows() -> Vec<[u8; ROW]> {
    let mut rows = Vec::with_capacity(NODES * THREADS * ROWS_PER_THREAD);
    for node in 0..NODES {
        for tid in 0..THREADS {
            for seq in 0..ROWS_PER_THREAD {
                rows.push(Generator::row(node as u64, tid, seq));
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// A cap at or above every design's natural per-pair QP count must be
/// the direct path, bit for bit: with no sharing possible the mux is
/// structurally skipped, so enabling it cannot move a single event.
#[test]
fn high_cap_is_byte_identical_to_the_direct_path() {
    let expected = expected_rows();
    let wr_variants =
        ["MEMQ/WR", "SEMQ/WR"].map(|n| ShuffleAlgorithm::parse(n).expect("WR variant parses"));
    for algorithm in ShuffleAlgorithm::ALL.into_iter().chain(wr_variants) {
        let direct = run_mux(algorithm, None);
        let muxed = run_mux(algorithm, Some(MuxConfig::with_cap(16)));
        assert_eq!(
            direct.snapshot, muxed.snapshot,
            "{algorithm}: cap 16 >= lanes must leave the metrics snapshot byte-identical"
        );
        assert_eq!(
            direct.end_ns, muxed.end_ns,
            "{algorithm}: cap 16 moved the final virtual time"
        );
        assert_eq!(muxed.delivered, expected, "{algorithm}: delivered multiset");
        assert_eq!(
            muxed.mux_stats,
            (0, 0, 0),
            "{algorithm}: a non-engaging mux must not materialize slots"
        );
        assert_eq!(direct.violations, 0, "{algorithm}: direct-path auditor");
        assert_eq!(muxed.violations, 0, "{algorithm}: muxed-path auditor");
    }
}

/// With the cap below the lane count the ME designs share physical QPs.
/// Delivery must still be exactly-once and auditor-clean, and the mux
/// must actually have shared something.
#[test]
fn capped_lanes_share_qps_and_still_deliver_everything() {
    let expected = expected_rows();
    let capped: Vec<ShuffleAlgorithm> = ["MEMQ/SR", "MEMQ/RD", "MEMQ/WR"]
        .iter()
        .map(|n| ShuffleAlgorithm::parse(n).expect("algorithm parses"))
        .collect();
    for algorithm in capped {
        assert!(algorithm.endpoints(THREADS) > 1, "{algorithm}: needs >1 lane");
        let run = run_mux(algorithm, Some(MuxConfig::with_cap(1)));
        assert_eq!(
            run.delivered, expected,
            "{algorithm}: capped run lost or duplicated rows \
             ({} of {} delivered)",
            run.delivered.len(),
            expected.len()
        );
        assert_eq!(run.violations, 0, "{algorithm}: capped-run auditor");
        let (qp_count, natural, waits) = run.mux_stats;
        assert!(
            qp_count > 0 && qp_count < natural,
            "{algorithm}: cap 1 must materialize fewer physical QPs than \
             the natural wiring ({qp_count} vs {natural})"
        );
        assert!(
            waits > 0,
            "{algorithm}: sharing {natural} lanes over {qp_count} slots \
             must record lease waits"
        );
    }
}
