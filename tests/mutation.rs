//! Mutation smoke test: each compile-time saboteur breaks exactly one
//! protocol step, and the auditor must catch it as a *named*
//! [`AuditViolation`] — never a hang, never a silent pass.
//!
//! Only built with `--features saboteur`; see `ci.sh`. The saboteurs
//! live at the real call sites inside the endpoints
//! (`crates/core/src/sabotage.rs` documents each), so this suite is a
//! living proof that the invariant checks are sharp enough to see one
//! skipped write-back, one dropped ring announcement, one off-by-one
//! `Depleted` counter and one double grant.
#![cfg(feature = "saboteur")]

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_repro::audit::{AuditViolation, ShuffleAuditor};
use rshuffle_repro::engine::{run_shuffle_with_restart, Generator, QueryReport, RestartPolicy};
use rshuffle_repro::rshuffle::sabotage::{arm, disarm, Sabotage};
use rshuffle_repro::rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_repro::simnet::{DeviceProfile, SimDuration};

const NODES: usize = 3;
const THREADS: usize = 2;
const ROWS_PER_THREAD: usize = 800;
const ROW: usize = 16;

/// The saboteur state is process-wide; the test harness runs tests on
/// parallel threads, so every test serializes on this lock.
static SABOTAGE_LOCK: Mutex<()> = Mutex::new(());

struct SabotagedRun {
    report: QueryReport,
    auditor: Arc<ShuffleAuditor>,
    delivered: usize,
}

/// Runs one single-attempt query with `s` armed and the auditor
/// installed. Completing at all (success or typed error) is itself part
/// of the contract under test: a sabotaged run must never hang.
fn run_sabotaged(algorithm: ShuffleAlgorithm, s: Sabotage) -> SabotagedRun {
    let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
    config.message_size = 4096;
    config.stall_timeout = SimDuration::from_millis(2);
    config.depleted_timeout = SimDuration::from_micros(500);
    let runtime = config.build_runtime(DeviceProfile::edr());
    let auditor = runtime.enable_audit();
    let delivered: Arc<Mutex<HashMap<u32, Vec<[u8; ROW]>>>> = Arc::new(Mutex::new(HashMap::new()));
    let d = delivered.clone();
    arm(s);
    let report = run_shuffle_with_restart(
        &runtime,
        &config,
        RestartPolicy {
            max_restarts: 0,
            initial_backoff: SimDuration::from_micros(50),
            max_backoff: SimDuration::from_micros(500),
        },
        ROW,
        |_, node| {
            Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64)) as Arc<dyn Operator>
        },
        move |attempt, _, _, batch| {
            let mut map = d.lock();
            let rows = map.entry(attempt).or_default();
            for row in batch.iter() {
                rows.push(row.try_into().expect("16-byte row"));
            }
        },
    );
    runtime.cluster().run();
    disarm();
    let report = report.lock().clone();
    let delivered = delivered.lock().get(&0).map_or(0, Vec::len);
    SabotagedRun {
        report,
        auditor,
        delivered,
    }
}

fn codes(violations: &[AuditViolation]) -> Vec<&'static str> {
    violations.iter().map(AuditViolation::code).collect()
}

/// Skipping one RC credit write-back self-heals (absolute credit), so
/// the run usually succeeds — only the auditor's online gap check can
/// see that the protocol forgot to announce credit.
#[test]
fn skipped_credit_writeback_is_named() {
    let _guard = SABOTAGE_LOCK.lock();
    let run = run_sabotaged(ShuffleAlgorithm::MEMQ_SR, Sabotage::SkipCreditWriteback);
    let found = codes(&run.auditor.violations());
    assert!(
        found.contains(&"credit_writeback_lost"),
        "skipped write-back must surface as credit_writeback_lost, got {found:?} \
         (run: {:?})",
        run.report.failure
    );
}

/// Dropping one ValidArr announcement in the RDMA Read design strands a
/// written buffer: the receiver's watchdog turns the would-be hang into
/// a typed stall, and finalize names the produced-but-never-consumed
/// ring entry.
#[test]
fn dropped_valid_arr_update_is_named() {
    let _guard = SABOTAGE_LOCK.lock();
    let run = run_sabotaged(ShuffleAlgorithm::MEMQ_RD, Sabotage::DropValidArrUpdate);
    assert!(
        run.report.failure.is_some(),
        "a dropped ValidArr entry must stall the query, not pass silently \
         ({} rows delivered)",
        run.delivered
    );
    // The attempt was torn down mid-stream, so audit against the
    // clean-termination invariants deliberately: the stranded entry is
    // exactly a producer/consumer imbalance.
    let found = codes(&run.auditor.finalize(true));
    assert!(
        found.contains(&"ring_imbalance"),
        "dropped ValidArr update must surface as ring_imbalance, got {found:?}"
    );
}

/// Announcing a `Depleted` counter one below the truth makes a receiver
/// terminate early and silently miss a message — the worst §4.4.2
/// failure mode. The auditor cross-checks the announced counter against
/// the data messages it watched the sender actually send.
#[test]
fn underreported_depleted_count_is_named() {
    let _guard = SABOTAGE_LOCK.lock();
    let run = run_sabotaged(ShuffleAlgorithm::MESQ_SR, Sabotage::UnderreportDepletedCount);
    let found = codes(&run.auditor.violations());
    assert!(
        found.contains(&"depleted_mismatch"),
        "underreported Depleted counter must surface as depleted_mismatch, \
         got {found:?} (run: {:?}, {} rows delivered)",
        run.report.failure,
        run.delivered
    );
}

/// Swallowing one credit write-back completion on the RC control CQ —
/// exactly what the old `let _ = ctrl_cq.poll(..)` drain did to every
/// ctrl completion — leaves the outstanding-write ledger nonzero
/// forever. End-of-stream must turn that into a typed stall, not a
/// silent pass.
#[test]
fn swallowed_ctrl_completion_is_named() {
    let _guard = SABOTAGE_LOCK.lock();
    let run = run_sabotaged(ShuffleAlgorithm::MEMQ_SR, Sabotage::SwallowCtrlCompletion);
    let failure = run
        .report
        .failure
        .as_ref()
        .expect("a swallowed ctrl completion must fail the query, not pass silently");
    assert!(
        format!("{failure:?}").contains("credit write-back"),
        "failure must name the unaccounted credit write-back, got {failure:?}"
    );
}

/// Granting the same remote buffer offset twice in the RDMA Write
/// design invites the sender to overwrite a buffer the operator may
/// still be reading; the auditor sees the second grant as releasing a
/// buffer the receiver no longer holds.
#[test]
fn double_grant_is_named() {
    let _guard = SABOTAGE_LOCK.lock();
    let run = run_sabotaged(
        ShuffleAlgorithm::parse("MEMQ/WR").expect("MEMQ/WR parses"),
        Sabotage::DoubleGrant,
    );
    let found = codes(&run.auditor.violations());
    assert!(
        found.contains(&"double_release"),
        "double grant must surface as double_release, got {found:?} \
         (run: {:?})",
        run.report.failure
    );
}
