//! Registered-memory footprint regression pins.
//!
//! `VerbsRuntime::registered_bytes_peak` tracks the high-water mark of
//! pinned memory per node but was never asserted anywhere; a change to
//! buffer sizing, ring layout, or scratch allocation would slip through
//! silently. These tests pin the peak for MESQ/SR — the paper's
//! flagship algorithm — across the DESIGN.md §4 calibration shapes:
//!
//! * F9 (message-size sweep, 8 nodes EDR): UD registers MTU-sized
//!   buffers, so the pinned footprint must stay **flat** across message
//!   sizes 4 KiB → 1 MiB and far below the 100+ MiB an RC design pins
//!   at 1 MiB messages (the paper's "< 1 MiB pinned for UD" shape,
//!   scaled by our simulated buffer counts).
//! * F10 (scale-out, 2–16 nodes EDR): the per-node footprint grows with
//!   the receive window per source node.
//!
//! The constants are exact: the simulator is deterministic and the
//! admission controller budgets against these very numbers
//! (`ExchangeConfig::registered_bytes_estimate`), so any drift is a
//! real footprint change that must be acknowledged here.

use std::sync::Arc;

use rshuffle_repro::engine::{run_shuffle_with_restart, Generator, RestartPolicy};
use rshuffle_repro::rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_repro::simnet::DeviceProfile;

const THREADS: usize = 2;
const ROW: usize = 16;

/// Runs one healthy MESQ/SR shuffle and returns the peak registered
/// bytes observed on node 0 (all nodes are symmetric under the
/// repartition plan).
fn mesq_sr_peak(nodes: usize, message_size: usize) -> usize {
    let mut config = ExchangeConfig::repartition(ShuffleAlgorithm::MESQ_SR, nodes, THREADS);
    config.message_size = message_size;
    let runtime = config.build_runtime(DeviceProfile::edr());
    let report = run_shuffle_with_restart(
        &runtime,
        &config,
        RestartPolicy::default(),
        ROW,
        |_, node| Arc::new(Generator::new(64, THREADS, node as u64)) as Arc<dyn Operator>,
        |_, _, _, _| {},
    );
    runtime.cluster().run();
    assert!(
        report.lock().succeeded(),
        "MESQ/SR {nodes} nodes msg {message_size}: {:?}",
        report.lock().failure
    );
    let peak = runtime.registered_bytes_peak(0);
    for node in 1..nodes {
        assert_eq!(
            runtime.registered_bytes_peak(node),
            peak,
            "repartition is symmetric; node {node} diverged"
        );
    }
    peak
}

/// F9 shape: UD pins MTU-sized buffers, so MESQ/SR's footprint is flat
/// across the paper's whole message-size sweep.
#[test]
fn mesq_sr_peak_is_flat_across_message_sizes() {
    let baseline = mesq_sr_peak(8, 4 << 10);
    for message_size in [16 << 10, 64 << 10, 256 << 10, 1 << 20] {
        assert_eq!(
            mesq_sr_peak(8, message_size),
            baseline,
            "MESQ/SR pinned memory must not depend on message size \
             (msg = {message_size})"
        );
    }
}

/// F9/F10 pins: exact per-node peaks at 64 KiB messages for the
/// scale-out node counts. MESQ/SR's footprint is dominated by the
/// receive window (3 buffers × window × MTU per source node), so it
/// grows linearly with cluster size and stays orders of magnitude below
/// an RC design's per-destination ring buffers at large messages.
#[test]
fn mesq_sr_peak_is_pinned_per_scaleout_shape() {
    for (nodes, expected) in [(2, 524_288), (4, 1_310_720), (8, 2_883_584), (16, 6_029_312)] {
        let peak = mesq_sr_peak(nodes, 64 << 10);
        assert_eq!(
            peak, expected,
            "MESQ/SR @ {nodes} nodes: peak registered bytes drifted"
        );
        // The admission controller budgets against exactly this number.
        let mut config = ExchangeConfig::repartition(ShuffleAlgorithm::MESQ_SR, nodes, THREADS);
        config.message_size = 64 << 10;
        let runtime = config.build_runtime(DeviceProfile::edr());
        assert_eq!(
            config.registered_bytes_estimate(runtime.profile(), 0),
            expected,
            "MESQ/SR @ {nodes} nodes: admission estimate disagrees with the pin"
        );
        // The paper's calibration shape: UD pinning stays small — under
        // 8 MiB per node even at 16 nodes, where an RC ring design at
        // 1 MiB messages pins two orders of magnitude more.
        assert!(
            peak < 8 << 20,
            "MESQ/SR @ {nodes} nodes: {peak} bytes pinned — UD footprint blew up"
        );
    }
}
