//! Differential conformance harness: all six shuffle algorithms are run
//! over identical seeded workloads — healthy and under PR-2 fault plans
//! — with the protocol auditor installed, and the delivered multisets
//! are cross-checked against each other and against the generator.
//!
//! The six designs differ in transport (Send/Receive vs RDMA Read vs
//! RDMA Write, RC vs UD) and queue-pair topology, but they implement
//! the same relational exchange: for the same seed they must deliver
//! the same multiset of rows to the same nodes. Any divergence between
//! two algorithms is a protocol bug in at least one of them, and on a
//! healthy run the invariant auditor must agree with a completely empty
//! violation log.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_repro::audit::AuditViolation;
use rshuffle_repro::engine::{
    run_shuffle_with_restart, run_workload, Generator, QueryReport, QuerySpec, RestartPolicy,
};
use rshuffle_repro::rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_repro::sched::{Scheduler, SchedulerConfig};
use rshuffle_repro::simnet::{DeviceProfile, SimDuration};
use rshuffle_repro::verbs::{FaultConfig, FaultPlan};

const NODES: usize = 3;
const THREADS: usize = 2;
const ROWS_PER_THREAD: usize = 800;
const ROW: usize = 16;

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// One run of one algorithm: the query report, the rows the winning
/// attempt delivered (sorted), and the auditor's final verdict.
struct ConformanceRun {
    report: QueryReport,
    delivered: Vec<[u8; ROW]>,
    violations: Vec<AuditViolation>,
}

fn conformance_config(algorithm: ShuffleAlgorithm, plan: FaultPlan) -> ExchangeConfig {
    let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
    config.message_size = 4096;
    config.stall_timeout = SimDuration::from_millis(2);
    config.depleted_timeout = us(500);
    config.faults = FaultConfig {
        seed: 42,
        plan,
        ..FaultConfig::default()
    };
    config
}

fn run_conformance(algorithm: ShuffleAlgorithm, plan: FaultPlan, max_restarts: u32) -> ConformanceRun {
    let config = conformance_config(algorithm, plan);
    let runtime = config.build_runtime(DeviceProfile::edr());
    // Install the auditor explicitly so the harness exercises it even
    // when the `audit` cargo feature (auto-install) is off.
    let auditor = runtime.enable_audit();
    let delivered: Arc<Mutex<HashMap<u32, Vec<[u8; ROW]>>>> = Arc::new(Mutex::new(HashMap::new()));
    let d = delivered.clone();
    let report = run_shuffle_with_restart(
        &runtime,
        &config,
        RestartPolicy {
            max_restarts,
            initial_backoff: us(50),
            max_backoff: SimDuration::from_millis(1),
        },
        ROW,
        |_, node| {
            Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64)) as Arc<dyn Operator>
        },
        move |attempt, _, _, batch| {
            let mut map = d.lock();
            let rows = map.entry(attempt).or_default();
            for row in batch.iter() {
                rows.push(row.try_into().expect("16-byte row"));
            }
        },
    );
    runtime.cluster().run();
    let report = report.lock().clone();
    let violations = auditor.finalize(report.succeeded());
    let mut delivered = delivered
        .lock()
        .get(&report.restarts)
        .cloned()
        .unwrap_or_default();
    delivered.sort_unstable();
    ConformanceRun {
        report,
        delivered,
        violations,
    }
}

/// Every row each node's generator will emit, cluster-wide, sorted.
fn expected_rows() -> Vec<[u8; ROW]> {
    let mut rows = Vec::with_capacity(NODES * THREADS * ROWS_PER_THREAD);
    for node in 0..NODES {
        for tid in 0..THREADS {
            for seq in 0..ROWS_PER_THREAD {
                rows.push(Generator::row(node as u64, tid, seq));
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// Healthy fabric: all six paper algorithms plus the two §7 RDMA Write
/// variants, same seed, no faults. Every design must deliver the
/// identical multiset with zero restarts, and the protocol auditor must
/// find nothing.
#[test]
fn all_algorithms_agree_on_a_healthy_fabric() {
    let expected = expected_rows();
    let wr_variants = ["MEMQ/WR", "SEMQ/WR"]
        .map(|n| ShuffleAlgorithm::parse(n).expect("WR variant parses"));
    for algorithm in ShuffleAlgorithm::ALL.into_iter().chain(wr_variants) {
        let run = run_conformance(algorithm, FaultPlan::new(), 0);
        assert!(
            run.report.succeeded(),
            "{algorithm}: healthy run failed: {:?}",
            run.report.failure
        );
        assert_eq!(run.report.restarts, 0, "{algorithm}: healthy run restarted");
        assert_eq!(
            run.delivered, expected,
            "{algorithm}: delivered multiset diverges from the generator \
             ({} of {} rows)",
            run.delivered.len(),
            expected.len()
        );
        assert!(
            run.violations.is_empty(),
            "{algorithm}: auditor flagged a healthy run: {:?}",
            run.violations
        );
    }
}

/// Faulted fabric: the same PR-2 fault plans the chaos suite uses, one
/// per transport-level failure mode. Under every plan, every algorithm
/// must converge (within the restart budget) on exactly the generated
/// multiset — so all six agree with each other run-to-run even when
/// their recovery paths differ wildly.
#[test]
fn all_algorithms_agree_under_fault_plans() {
    let expected = expected_rows();
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("link-flap", FaultPlan::new().link_flap(1, us(10), us(150))),
        (
            "straggler",
            FaultPlan::new().straggler(2, us(5), us(500), 4.0),
        ),
        ("qp-failure", FaultPlan::new().qp_failure(1, us(20))),
        (
            "ud-loss-burst",
            FaultPlan::new().ud_loss_burst(0, us(10), us(120), 1.0),
        ),
    ];
    for (plan_name, plan) in plans {
        for algorithm in ShuffleAlgorithm::ALL {
            let run = run_conformance(algorithm, plan.clone(), 6);
            assert!(
                run.report.succeeded(),
                "{algorithm} under {plan_name}: failed after {} restarts: {:?}",
                run.report.restarts,
                run.report.failure
            );
            assert_eq!(
                run.delivered, expected,
                "{algorithm} under {plan_name}: winning attempt diverges \
                 ({} of {} rows, {} restarts)",
                run.delivered.len(),
                expected.len(),
                run.report.restarts
            );
            assert!(
                run.violations.is_empty(),
                "{algorithm} under {plan_name}: auditor flagged the run: {:?}",
                run.violations
            );
        }
    }
}

/// Seed of one query's generator on one node: queries must produce
/// disjoint, recognizable row sets so cross-query leaks are caught.
fn query_seed(query: u32, node: usize) -> u64 {
    node as u64 ^ ((query as u64 + 1) << 32)
}

/// Every row `query`'s generators emit cluster-wide, sorted.
fn expected_rows_for_query(query: u32) -> Vec<[u8; ROW]> {
    let mut rows = Vec::with_capacity(NODES * THREADS * ROWS_PER_THREAD);
    for node in 0..NODES {
        for tid in 0..THREADS {
            for seq in 0..ROWS_PER_THREAD {
                rows.push(Generator::row(query_seed(query, node), tid, seq));
            }
        }
    }
    rows.sort_unstable();
    rows
}

/// Two queries on the same fabric, for every algorithm: each query's
/// winning attempt must deliver exactly its own generator's multiset
/// (no loss, no duplication, no cross-query leakage), the protocol
/// auditor must stay silent, and — because the scheduler, the
/// weighted-fair arbiter, and the kernel are all deterministic — two
/// same-seed runs must produce byte-identical snapshots and traces.
#[test]
fn two_queries_share_the_fabric_cleanly() {
    for algorithm in ShuffleAlgorithm::ALL {
        let mut artifacts = Vec::new();
        for rep in 0..2 {
            let config = conformance_config(algorithm, FaultPlan::new());
            let runtime = config.build_runtime(DeviceProfile::edr());
            let auditor = runtime.enable_audit();
            let scheduler = Scheduler::new(&runtime, SchedulerConfig::default());
            type PerAttempt = HashMap<(u32, u32), Vec<[u8; ROW]>>;
            let delivered: Arc<Mutex<PerAttempt>> = Arc::new(Mutex::new(HashMap::new()));
            let d = delivered.clone();
            let handles = run_workload(
                &runtime,
                &scheduler,
                vec![
                    QuerySpec::new(0, config.clone(), ROW),
                    QuerySpec::new(1, config.clone(), ROW),
                ],
                |query, _, node| {
                    Arc::new(Generator::new(
                        ROWS_PER_THREAD,
                        THREADS,
                        query_seed(query, node),
                    )) as Arc<dyn Operator>
                },
                move |query, attempt, _, _, batch| {
                    let mut map = d.lock();
                    let rows = map.entry((query, attempt)).or_default();
                    for row in batch.iter() {
                        rows.push(row.try_into().expect("16-byte row"));
                    }
                },
            );
            runtime.cluster().run();
            for h in &handles {
                let report = h.report.lock();
                assert!(
                    report.succeeded(),
                    "{algorithm} rep {rep} query {}: failed: {:?}",
                    h.query,
                    report.failure
                );
                let mut rows = delivered
                    .lock()
                    .get(&(h.query, report.restarts))
                    .cloned()
                    .unwrap_or_default();
                rows.sort_unstable();
                assert_eq!(
                    rows,
                    expected_rows_for_query(h.query),
                    "{algorithm} rep {rep} query {}: delivered multiset diverges \
                     from its own generator",
                    h.query
                );
            }
            let violations = auditor.finalize(true);
            assert!(
                violations.is_empty(),
                "{algorithm} rep {rep}: auditor flagged the two-query run: {violations:?}"
            );
            let obs = runtime.obs();
            artifacts.push((obs.snapshot_json(), obs.chrome_trace_json()));
        }
        assert_eq!(
            artifacts[0], artifacts[1],
            "{algorithm}: same-seed two-query runs are not byte-identical"
        );
    }
}

/// The auditor itself must not perturb the simulation: a healthy run
/// with the auditor installed produces the byte-identical observability
/// snapshot and Chrome trace as one without. Hooks cost no virtual time
/// and the auditor only touches the recorder on its first violation.
#[test]
fn auditor_is_invisible_to_virtual_time() {
    for algorithm in [ShuffleAlgorithm::MEMQ_SR, ShuffleAlgorithm::MEMQ_RD] {
        let mut snapshots = Vec::new();
        let mut traces = Vec::new();
        for enable in [false, true] {
            let config = conformance_config(algorithm, FaultPlan::new());
            let runtime = config.build_runtime(DeviceProfile::edr());
            if enable {
                runtime.enable_audit();
            }
            let report = run_shuffle_with_restart(
                &runtime,
                &config,
                RestartPolicy {
                    max_restarts: 0,
                    initial_backoff: us(50),
                    max_backoff: us(500),
                },
                ROW,
                |_, node| {
                    Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64))
                        as Arc<dyn Operator>
                },
                |_, _, _, _| {},
            );
            runtime.cluster().run();
            assert!(
                report.lock().succeeded(),
                "{algorithm} (audit={enable}): failed"
            );
            let obs = runtime.obs();
            snapshots.push(obs.snapshot_json());
            traces.push(obs.chrome_trace_json());
        }
        assert_eq!(
            snapshots[0], snapshots[1],
            "{algorithm}: installing the auditor changed the metrics snapshot"
        );
        assert_eq!(
            traces[0], traces[1],
            "{algorithm}: installing the auditor changed the trace"
        );
    }
}
