//! Property tests for the weighted-fair NIC arbiter
//! ([`FairResource`]) in isolation: for random weight vectors and
//! demand patterns, granted bandwidth shares converge to the configured
//! weights, no flow starves, and the untagged path stays bit-identical
//! to the plain FIFO [`Resource`].

use proptest::prelude::*;
use rshuffle_repro::simnet::{FairResource, FlowId, FlowTable, Resource, SimDuration, SimTime};

const HORIZON_NS: u64 = 20_000_000; // 20 ms of virtual time

/// Closed-loop demand: every flow re-issues a `quantum_ns[i]`-long
/// reservation the moment its previous one completes, until the
/// horizon. Returns per-flow busy time and the sum of all durations.
fn run_closed_loop(weights: &[u64], quantum_ns: &[u64]) -> (Vec<SimDuration>, SimDuration) {
    let table = FlowTable::new();
    for (i, &w) in weights.iter().enumerate() {
        table.set_weight(FlowId(i as u32), w);
    }
    let mut fair = FairResource::new();
    let mut next_arrival: Vec<SimTime> = vec![SimTime::ZERO; weights.len()];
    let mut issued = SimDuration::ZERO;
    // The flow whose next request arrives earliest goes next (ties by
    // flow id) — the deterministic analogue of event order.
    while let Some((i, &at)) = next_arrival
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t.as_nanos() < HORIZON_NS)
        .min_by_key(|&(i, &t)| (t, i))
    {
        let duration = SimDuration::from_nanos(quantum_ns[i]);
        let r = fair.reserve_flow(at, duration, FlowId(i as u32), &table);
        assert!(r.start >= at, "reservation granted before its arrival");
        assert_eq!(r.end, r.start + duration, "duration not honored");
        next_arrival[i] = r.end;
        issued += duration;
    }
    let busy: Vec<SimDuration> = (0..weights.len())
        .map(|i| fair.busy_for(FlowId(i as u32)))
        .collect();
    assert_eq!(
        fair.busy_total(),
        issued,
        "busy accounting lost or invented time"
    );
    (busy, issued)
}

proptest! {
    /// Untagged reservations through the fair arbiter are bit-identical
    /// to the plain FIFO resource, for any arrival/duration pattern —
    /// the "default weightless mode" guarantee.
    #[test]
    fn untagged_path_matches_plain_fifo(
        gaps in prop::collection::vec(0u64..5_000, 48),
        durs in prop::collection::vec(1u64..10_000, 48),
    ) {
        let table = FlowTable::new();
        let mut fair = FairResource::new();
        let mut fifo = Resource::default();
        let mut now = SimTime::ZERO;
        for (&gap, &dur) in gaps.iter().zip(&durs) {
            now += SimDuration::from_nanos(gap);
            let duration = SimDuration::from_nanos(dur);
            let a = fair.reserve_flow(now, duration, FlowId::NONE, &table);
            let b = fifo.reserve(now, duration);
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
        }
        prop_assert_eq!(fair.free_at(), fifo.free_at());
    }

    /// A single registered flow with any weight is never paced: with no
    /// co-runner its schedule is plain FIFO, so registering a weight for
    /// a lone query cannot change its trace.
    #[test]
    fn solo_flow_is_never_paced(
        weight in 1u64..16,
        gaps in prop::collection::vec(0u64..5_000, 48),
        durs in prop::collection::vec(1u64..10_000, 48),
    ) {
        let table = FlowTable::new();
        table.set_weight(FlowId(7), weight);
        let mut fair = FairResource::new();
        let mut fifo = Resource::default();
        let mut now = SimTime::ZERO;
        for (&gap, &dur) in gaps.iter().zip(&durs) {
            now += SimDuration::from_nanos(gap);
            let duration = SimDuration::from_nanos(dur);
            let a = fair.reserve_flow(now, duration, FlowId(7), &table);
            let b = fifo.reserve(now, duration);
            prop_assert_eq!(a.start, b.start, "solo flow was paced");
            prop_assert_eq!(a.end, b.end);
        }
    }

    /// Under saturating closed-loop demand from every flow, granted
    /// shares converge to the weight vector: each flow's busy time,
    /// normalized by its weight, lands within 2.5× of every other's, and
    /// the resource stays mostly busy. (The arbiter is an *eager online*
    /// approximation — it never reorders or delays a grant beyond one
    /// weighted quantum — and the closed-loop harness issues one request
    /// per flow at a time, so perfect shares and 100% utilization are
    /// unattainable by construction; the bounds pin the approximation.)
    #[test]
    fn shares_converge_to_weights(
        weights in prop::collection::vec(1u64..8, 2..5),
        quanta in prop::collection::vec(500u64..4_000, 4),
    ) {
        let quanta = &quanta[..weights.len()];
        let (busy, issued) = run_closed_loop(&weights, quanta);
        // Work conservation: closed-loop demand keeps the pipe full, so
        // nearly the entire horizon is granted (boundary effects only).
        prop_assert!(
            issued.as_nanos() >= HORIZON_NS * 70 / 100,
            "arbiter left the resource idle under saturating demand: \
             {} of {HORIZON_NS} ns granted",
            issued.as_nanos()
        );
        let normalized: Vec<f64> = busy
            .iter()
            .zip(&weights)
            .map(|(b, &w)| b.as_nanos() as f64 / w as f64)
            .collect();
        let lo = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = normalized.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(
            hi <= lo * 2.5,
            "weighted shares diverged: weights {weights:?}, busy {busy:?}, \
             normalized spread {lo:.0}..{hi:.0}"
        );
    }

    /// No starvation: every flow — even weight 1 against weight-7
    /// rivals — receives at least a quarter of its entitled share of
    /// the horizon.
    #[test]
    fn no_flow_starves(
        weights in prop::collection::vec(1u64..8, 2..5),
        quanta in prop::collection::vec(500u64..4_000, 4),
    ) {
        let quanta = &quanta[..weights.len()];
        let (busy, _) = run_closed_loop(&weights, quanta);
        let total: u64 = weights.iter().sum();
        for (i, b) in busy.iter().enumerate() {
            let entitled = HORIZON_NS as f64 * weights[i] as f64 / total as f64;
            prop_assert!(
                b.as_nanos() as f64 >= entitled * 0.25,
                "flow {i} (weight {}) starved: {} ns of {entitled:.0} entitled, \
                 weights {weights:?}",
                weights[i],
                b.as_nanos()
            );
        }
    }
}
