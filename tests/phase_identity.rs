//! Identity and correctness contracts for phase-scheduled all-to-all.
//!
//! Phasing only changes *when* each destination is served — never what
//! is delivered. Three contracts pin that:
//!
//! * **Identity**: with [`PhasePolicy::Off`] (the default) nothing
//!   phase-related is even built, so a run with the knob explicitly off
//!   — even with a byte estimate supplied — must be byte-identical to
//!   the seed path: same metrics snapshot, same delivered multiset,
//!   same final virtual time, auditor clean.
//! * **Exactly-once**: under both schedules (naive rotation and
//!   skew-aware) every algorithm still delivers every row exactly once
//!   with a clean auditor, and same-seed phased runs are bit-identical.
//! * **Chaos**: phased runs under the PR 2 fault plans still terminate
//!   with exactly-once delivery in the winning attempt (the runner's
//!   abort path must fail peers fast instead of hanging the barrier).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_repro::engine::{
    drive_to_sink, run_shuffle_with_restart, Generator, RestartPolicy,
};
use rshuffle_repro::rshuffle::{
    CostModel, Exchange, ExchangeConfig, Operator, PhasePolicy, ReceiveOperator, ShuffleAlgorithm,
    ShuffleOperator,
};
use rshuffle_repro::simnet::{DeviceProfile, SimDuration};
use rshuffle_repro::verbs::{FaultConfig, FaultPlan};

const NODES: usize = 3;
const THREADS: usize = 2;
const ROWS_PER_THREAD: usize = 800;
const ROW: usize = 16;

struct PhaseRun {
    snapshot: String,
    end_ns: u64,
    delivered: Vec<[u8; ROW]>,
    violations: usize,
}

/// Runs one small repartition with the given phase policy and returns
/// everything the contracts compare.
fn run_phase(
    algorithm: ShuffleAlgorithm,
    policy: PhasePolicy,
    bytes: Option<Vec<Vec<u64>>>,
) -> PhaseRun {
    let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
    config.message_size = 4096;
    config.phase = policy;
    config.phase_bytes = bytes.map(Arc::new);
    let runtime = config.build_runtime(DeviceProfile::edr());
    let auditor = runtime.enable_audit();
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());
    let delivered: Arc<Mutex<Vec<[u8; ROW]>>> = Arc::new(Mutex::new(Vec::new()));
    let mut stats = Vec::new();
    for node in 0..NODES {
        let source = Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64));
        let mut shuffle = ShuffleOperator::with_lanes(
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            THREADS,
            cost.clone(),
        );
        if let Some(runner) = &exchange.phases {
            shuffle = shuffle.with_phases(runner.clone(), node);
        }
        stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("s{node}"),
            Arc::new(shuffle),
            THREADS,
            |_, _| {},
        ));
        let receive = Arc::new(ReceiveOperator::with_lanes(
            exchange.recv[node].clone(),
            ROW,
            2048,
            THREADS,
            cost.clone(),
        ));
        let d = delivered.clone();
        stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("r{node}"),
            receive,
            THREADS,
            move |_, batch| {
                let mut rows = d.lock();
                for row in batch.iter() {
                    rows.push(row.try_into().expect("16-byte row"));
                }
            },
        ));
    }
    runtime.cluster().run();
    for s in &stats {
        assert!(
            s.lock().errors.is_empty(),
            "{algorithm} under {policy:?}: worker errors: {:?}",
            s.lock().errors
        );
    }
    let violations = auditor.finalize(true).len();
    let mut delivered = Arc::try_unwrap(delivered)
        .expect("all workers joined")
        .into_inner();
    delivered.sort_unstable();
    PhaseRun {
        snapshot: runtime.obs().snapshot_json(),
        end_ns: runtime.kernel().now().as_nanos(),
        delivered,
        violations,
    }
}

/// Every row the generators emit, cluster-wide, sorted.
fn expected_rows() -> Vec<[u8; ROW]> {
    let mut rows = Vec::with_capacity(NODES * THREADS * ROWS_PER_THREAD);
    for node in 0..NODES {
        for tid in 0..THREADS {
            for seq in 0..ROWS_PER_THREAD {
                rows.push(Generator::row(node as u64, tid, seq));
            }
        }
    }
    rows.sort_unstable();
    rows
}

fn all_with_wr() -> Vec<ShuffleAlgorithm> {
    let wr = ["MEMQ/WR", "SEMQ/WR"].map(|n| ShuffleAlgorithm::parse(n).expect("WR parses"));
    ShuffleAlgorithm::ALL.into_iter().chain(wr).collect()
}

/// `PhasePolicy::Off` must be the seed path, bit for bit: nothing
/// phase-related is built, so even supplying a byte estimate cannot
/// move a single event.
#[test]
fn off_policy_is_byte_identical_to_the_seed_path() {
    let expected = expected_rows();
    for algorithm in all_with_wr() {
        let seed = run_phase(algorithm, PhasePolicy::Off, None);
        // A (nonsensical, but well-formed) estimate that would reorder
        // everything if it were ever consulted.
        let est = vec![vec![1u64 << 20; NODES]; NODES];
        let off = run_phase(algorithm, PhasePolicy::Off, Some(est));
        assert_eq!(
            seed.snapshot, off.snapshot,
            "{algorithm}: Off must leave the metrics snapshot byte-identical"
        );
        assert_eq!(
            seed.end_ns, off.end_ns,
            "{algorithm}: Off moved the final virtual time"
        );
        assert_eq!(off.delivered, expected, "{algorithm}: delivered multiset");
        assert_eq!(seed.violations, 0, "{algorithm}: seed-path auditor");
        assert_eq!(off.violations, 0, "{algorithm}: off-path auditor");
    }
}

/// Both schedules must keep delivery exactly-once and auditor-clean for
/// every design, and a repeated phased run must be bit-identical.
#[test]
fn phased_delivery_is_exactly_once_for_every_algorithm() {
    let expected = expected_rows();
    for algorithm in ShuffleAlgorithm::ALL {
        for policy in [PhasePolicy::Naive, PhasePolicy::SkewAware] {
            let run = run_phase(algorithm, policy, None);
            assert_eq!(
                run.delivered,
                expected,
                "{algorithm} under {policy:?}: phased run lost or duplicated rows \
                 ({} of {} delivered)",
                run.delivered.len(),
                expected.len()
            );
            assert_eq!(run.violations, 0, "{algorithm} under {policy:?}: auditor");
            let again = run_phase(algorithm, policy, None);
            assert_eq!(
                run.snapshot, again.snapshot,
                "{algorithm} under {policy:?}: phased runs must be deterministic"
            );
            assert_eq!(run.end_ns, again.end_ns, "{algorithm} under {policy:?}");
        }
    }
}

/// A skewed byte estimate changes the schedule, never the delivery.
#[test]
fn skew_aware_estimate_preserves_delivery() {
    let expected = expected_rows();
    // Node 0 is claimed (correctly or not — the schedule must not care)
    // to send 100x more to node 1 than anything else.
    let mut est = vec![vec![1u64; NODES]; NODES];
    est[0][1] = 100;
    let run = run_phase(ShuffleAlgorithm::MESQ_SR, PhasePolicy::SkewAware, Some(est));
    assert_eq!(run.delivered, expected, "estimate must not change delivery");
    assert_eq!(run.violations, 0, "auditor under skewed estimate");
}

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// Phased chaos: under the PR 2 fault plans the query must still
/// terminate (abort propagates through the barrier instead of hanging)
/// and the winning attempt must deliver every row exactly once.
#[test]
fn phased_chaos_plans_stay_exactly_once() {
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("link-flap", FaultPlan::new().link_flap(1, us(10), us(150))),
        ("qp-failure", FaultPlan::new().qp_failure(1, us(20))),
        (
            "ud-loss-burst",
            FaultPlan::new().ud_loss_burst(0, us(10), us(120), 1.0),
        ),
    ];
    let expected = expected_rows();
    for (plan_name, plan) in plans {
        for algorithm in ShuffleAlgorithm::ALL {
            let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
            config.message_size = 4096;
            config.phase = PhasePolicy::Naive;
            config.stall_timeout = SimDuration::from_millis(2);
            config.depleted_timeout = us(500);
            config.faults = FaultConfig {
                seed: 42,
                plan: plan.clone(),
                ..FaultConfig::default()
            };
            let runtime = config.build_runtime(DeviceProfile::edr());
            let delivered: Arc<Mutex<HashMap<u32, Vec<[u8; ROW]>>>> =
                Arc::new(Mutex::new(HashMap::new()));
            let d = delivered.clone();
            let report = run_shuffle_with_restart(
                &runtime,
                &config,
                RestartPolicy {
                    max_restarts: 6,
                    initial_backoff: us(50),
                    max_backoff: SimDuration::from_millis(1),
                },
                ROW,
                |_, node| {
                    Arc::new(Generator::new(ROWS_PER_THREAD, THREADS, node as u64))
                        as Arc<dyn Operator>
                },
                move |attempt, _, _, batch| {
                    let mut map = d.lock();
                    let rows = map.entry(attempt).or_default();
                    for row in batch.iter() {
                        rows.push(row.try_into().expect("16-byte row"));
                    }
                },
            );
            runtime.cluster().run();
            let rep = report.lock().clone();
            assert!(
                rep.succeeded(),
                "{algorithm} phased under {plan_name}: query failed after {} restarts: {:?}",
                rep.restarts,
                rep.failure
            );
            let map = Arc::try_unwrap(delivered)
                .map(|m| m.into_inner())
                .unwrap_or_default();
            let winning = rep.restarts;
            let mut rows = map.get(&winning).cloned().unwrap_or_default();
            rows.sort_unstable();
            assert_eq!(
                rows,
                expected,
                "{algorithm} phased under {plan_name}: delivered {} of {} rows \
                 (restarts: {})",
                rows.len(),
                expected.len(),
                rep.restarts
            );
        }
    }
}
