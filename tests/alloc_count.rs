//! Steady-state allocation gate for the endpoint hot paths.
//!
//! The hot-path speed pass moved every endpoint onto pooled registered
//! buffers, reusable CQ scratch and cached address handles, so the
//! per-message allocation count of a query must not grow when the
//! endpoints process more messages: whatever the pipeline allocates per
//! row is a small pinned constant (engine batching), not a function of
//! the endpoint design. This harness installs a counting global
//! allocator, runs every algorithm at two sizes, and pins the marginal
//! allocations-per-row slope. An endpoint that starts allocating per
//! message (a `to_vec()` on the send path, a rebuilt AH vector per
//! multicast, a fresh completion `Vec` per poll) blows the bound.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rshuffle_repro::engine::{run_shuffle_with_restart, Generator, RestartPolicy};
use rshuffle_repro::rshuffle::{ExchangeConfig, Operator, ShuffleAlgorithm};
use rshuffle_repro::simnet::{DeviceProfile, SimDuration};

/// Counts every allocation (alloc, alloc_zeroed, realloc) made by the
/// test binary. Frees are not counted: the gate is on allocation churn.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The allocator counter is process-wide; serialize the tests so one
/// run's churn cannot leak into another's window.
static COUNT_LOCK: Mutex<()> = Mutex::new(());

const NODES: usize = 3;
const THREADS: usize = 2;
const ROW: usize = 16;

/// Runs one repartition query and returns the allocations made while
/// the simulation ran (setup/teardown excluded — the gate is on the
/// steady state, not on building the exchange).
fn allocs_during_run(algorithm: ShuffleAlgorithm, rows_per_thread: usize) -> u64 {
    let mut config = ExchangeConfig::repartition(algorithm, NODES, THREADS);
    config.message_size = 4096;
    let runtime = config.build_runtime(DeviceProfile::edr());
    let delivered = Arc::new(AtomicU64::new(0));
    let d = delivered.clone();
    let report = run_shuffle_with_restart(
        &runtime,
        &config,
        RestartPolicy {
            max_restarts: 0,
            initial_backoff: SimDuration::from_micros(50),
            max_backoff: SimDuration::from_micros(500),
        },
        ROW,
        move |_, node| {
            Arc::new(Generator::new(rows_per_thread, THREADS, node as u64)) as Arc<dyn Operator>
        },
        move |_, _, _, batch| {
            d.fetch_add(batch.rows() as u64, Ordering::Relaxed);
        },
    );
    let before = ALLOCS.load(Ordering::SeqCst);
    runtime.cluster().run();
    let after = ALLOCS.load(Ordering::SeqCst);
    let rep = report.lock().clone();
    assert!(
        rep.failure.is_none(),
        "{algorithm}: query failed: {:?}",
        rep.failure
    );
    let expected = (NODES * THREADS * rows_per_thread) as u64;
    assert_eq!(
        delivered.load(Ordering::SeqCst),
        expected,
        "{algorithm}: wrong row count"
    );
    after - before
}

/// Marginal allocations per extra row, pinned per algorithm. The
/// pipeline's genuine per-row cost (engine batch assembly, row copies
/// into output batches) measures at 0.03–0.12 allocations per row
/// across the designs; the bound sits just above that so a hot path
/// that starts allocating per row — or several times per message —
/// blows it immediately instead of drifting up unnoticed.
const MAX_ALLOCS_PER_ROW: f64 = 0.2;

#[test]
fn steady_state_allocations_do_not_scale_with_messages() {
    let _guard = COUNT_LOCK.lock();
    for algorithm in ShuffleAlgorithm::ALL {
        // Warm-up run so lazily initialized process state (thread-local
        // buffers, logger, histogram tables) is not billed to the
        // smaller run.
        let _ = allocs_during_run(algorithm, 200);
        let small = allocs_during_run(algorithm, 200);
        let large = allocs_during_run(algorithm, 600);
        let extra_rows = (NODES * THREADS * 400) as f64;
        let slope = (large.saturating_sub(small)) as f64 / extra_rows;
        eprintln!(
            "{algorithm}: {small} allocs @200 rows/thread, {large} @600, \
             slope {slope:.4} allocs/row"
        );
        assert!(
            slope <= MAX_ALLOCS_PER_ROW,
            "{algorithm}: steady-state allocations scale with messages \
             ({slope:.3} allocs/row > {MAX_ALLOCS_PER_ROW}); an endpoint \
             hot path is allocating per message"
        );
    }
}

/// The WR extension rides the same pooled buffers; gate it too.
#[test]
fn wr_extension_allocations_do_not_scale_with_messages() {
    let _guard = COUNT_LOCK.lock();
    for name in ["MEMQ/WR", "SEMQ/WR"] {
        let algorithm = ShuffleAlgorithm::parse(name).expect("WR variant parses");
        let _ = allocs_during_run(algorithm, 200);
        let small = allocs_during_run(algorithm, 200);
        let large = allocs_during_run(algorithm, 600);
        let extra_rows = (NODES * THREADS * 400) as f64;
        let slope = (large.saturating_sub(small)) as f64 / extra_rows;
        eprintln!("{name}: slope {slope:.4} allocs/row");
        assert!(
            slope <= MAX_ALLOCS_PER_ROW,
            "{name}: steady-state allocations scale with messages \
             ({slope:.3} allocs/row)"
        );
    }
}
