//! Property-based contracts for the phase scheduler.
//!
//! A phase schedule decomposes the N×N transfer matrix into rounds.
//! Whatever the matrix (holes, skew, self edges), these invariants must
//! hold for both policies:
//!
//! * every round is a partial matching (no source or destination serves
//!   twice in one round), and no exempted source ever appears;
//! * the rounds cover every nonzero pair of every *constrained* source
//!   exactly once, at its weight (the naive rotation constrains all
//!   sources; skew-aware exempts exactly the rows above
//!   `HEAVY_SOURCE_FACTOR` × the mean active row);
//! * building twice from the same matrix yields the identical schedule;
//! * the skew-aware schedule's longest round never exceeds the naive
//!   rotation's longest round (exempting heavy rows can only shrink it).

use std::collections::{BTreeMap, HashSet};

use proptest::prelude::*;
use rshuffle_repro::rshuffle::{PhasePolicy, PhaseSchedule, HEAVY_SOURCE_FACTOR};

/// Maximum matrix dimension the properties explore.
const MAX_N: usize = 10;

/// Shapes a flat sample of `MAX_N * MAX_N` draws into a random square
/// transfer matrix: dimension `1..=MAX_N`, weights `1..1000` with
/// roughly a third of the entries absent (zero = no transfer).
fn matrix_from(n: usize, raw: &[u64]) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let draw = raw[i * MAX_N + j] % 1500;
                    draw.saturating_sub(500)
                })
                .collect()
        })
        .collect()
}

fn nonzero_pairs(bytes: &[Vec<u64>]) -> BTreeMap<(usize, usize), u64> {
    let mut pairs = BTreeMap::new();
    for (src, row) in bytes.iter().enumerate() {
        for (dst, &b) in row.iter().enumerate() {
            if b > 0 {
                pairs.insert((src, dst), b);
            }
        }
    }
    pairs
}

proptest! {
    /// Every round is a partial matching, and the `dest_of` lookup
    /// agrees with the edge list.
    #[test]
    fn phases_are_partial_matchings(
        n in 1usize..=MAX_N,
        raw in prop::collection::vec(any::<u64>(), MAX_N * MAX_N),
    ) {
        let bytes = matrix_from(n, &raw);
        for policy in [PhasePolicy::Naive, PhasePolicy::SkewAware] {
            let schedule = PhaseSchedule::build(policy, &bytes).expect("schedule builds");
            for (p, phase) in schedule.phases().iter().enumerate() {
                let mut srcs = HashSet::new();
                let mut dsts = HashSet::new();
                for &(src, dst, b) in &phase.edges {
                    prop_assert!(b > 0, "{policy:?}: zero-weight edge scheduled");
                    prop_assert!(
                        !schedule.is_free(src),
                        "{policy:?} phase {p}: exempted source {src} scheduled"
                    );
                    prop_assert!(
                        srcs.insert(src),
                        "{policy:?} phase {p}: source {src} serves twice"
                    );
                    prop_assert!(
                        dsts.insert(dst),
                        "{policy:?} phase {p}: destination {dst} served twice"
                    );
                    prop_assert_eq!(schedule.dest_of(p, src), Some(dst));
                }
                prop_assert!(!phase.edges.is_empty(), "{policy:?}: empty phase {p}");
            }
        }
    }

    /// The union of all rounds is exactly the nonzero pairs of the
    /// constrained sources, each once, at its weight. The naive
    /// rotation constrains everybody; skew-aware exempts exactly the
    /// rows above `HEAVY_SOURCE_FACTOR` × the mean active row, and
    /// never all of them.
    #[test]
    fn coverage_is_exact(
        n in 1usize..=MAX_N,
        raw in prop::collection::vec(any::<u64>(), MAX_N * MAX_N),
    ) {
        let bytes = matrix_from(n, &raw);
        let all_pairs = nonzero_pairs(&bytes);
        for policy in [PhasePolicy::Naive, PhasePolicy::SkewAware] {
            let schedule = PhaseSchedule::build(policy, &bytes).expect("schedule builds");
            if policy == PhasePolicy::Naive {
                prop_assert!(schedule.free_sources().is_empty(), "naive exempts nobody");
            } else {
                // The exemption rule itself: free ⟺ row total above the
                // factor × mean of active rows — and a sole active
                // source is its own mean, so somebody always remains.
                let totals: Vec<u64> = bytes.iter().map(|r| r.iter().sum()).collect();
                let active = totals.iter().filter(|&&t| t > 0).count();
                if active > 0 {
                    let mean = totals.iter().sum::<u64>() as f64 / active as f64;
                    for (src, &t) in totals.iter().enumerate() {
                        prop_assert_eq!(
                            schedule.is_free(src),
                            (t as f64) > HEAVY_SOURCE_FACTOR * mean,
                            "source {} misclassified (total {}, mean {})",
                            src, t, mean
                        );
                    }
                    prop_assert!(
                        totals
                            .iter()
                            .enumerate()
                            .any(|(s, &t)| t > 0 && !schedule.is_free(s)),
                        "every active source exempted"
                    );
                }
            }
            let expected: BTreeMap<(usize, usize), u64> = all_pairs
                .iter()
                .filter(|((src, _), _)| !schedule.is_free(*src))
                .map(|(&k, &v)| (k, v))
                .collect();
            let mut got = BTreeMap::new();
            for phase in schedule.phases() {
                for &(src, dst, b) in &phase.edges {
                    prop_assert!(
                        got.insert((src, dst), b).is_none(),
                        "{policy:?}: pair ({src}, {dst}) scheduled twice"
                    );
                }
            }
            prop_assert_eq!(&got, &expected, "{:?}: coverage", policy);
        }
    }

    /// Same matrix in, same schedule out — phase order, edge order,
    /// everything.
    #[test]
    fn schedules_are_deterministic(
        n in 1usize..=MAX_N,
        raw in prop::collection::vec(any::<u64>(), MAX_N * MAX_N),
    ) {
        let bytes = matrix_from(n, &raw);
        for policy in [PhasePolicy::Naive, PhasePolicy::SkewAware] {
            let a = PhaseSchedule::build(policy, &bytes).expect("schedule builds");
            let b = PhaseSchedule::build(policy, &bytes).expect("schedule builds");
            prop_assert_eq!(a, b, "{:?}: non-deterministic schedule", policy);
        }
    }

    /// Exempting heavy rows may never regress: the skew-aware longest
    /// round is bounded by the naive rotation's longest round, and each
    /// equals the heaviest single transfer its constrained sources
    /// carry (a round can never end before its largest edge does).
    #[test]
    fn skew_aware_never_longer_than_naive_worst_phase(
        n in 1usize..=MAX_N,
        raw in prop::collection::vec(any::<u64>(), MAX_N * MAX_N),
    ) {
        let bytes = matrix_from(n, &raw);
        let naive = PhaseSchedule::build(PhasePolicy::Naive, &bytes).expect("naive builds");
        let skew = PhaseSchedule::build(PhasePolicy::SkewAware, &bytes).expect("skew builds");
        prop_assert!(
            skew.worst_phase_len() <= naive.worst_phase_len(),
            "skew-aware worst round {} exceeds naive worst round {}",
            skew.worst_phase_len(),
            naive.worst_phase_len()
        );
        let heaviest = nonzero_pairs(&bytes).values().copied().max().unwrap_or(0);
        prop_assert_eq!(naive.worst_phase_len(), heaviest);
        let heaviest_constrained = nonzero_pairs(&bytes)
            .iter()
            .filter(|((src, _), _)| !skew.is_free(*src))
            .map(|(_, &b)| b)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(skew.worst_phase_len(), heaviest_constrained);
        // Skew-aware needs no more rounds than the rotation it is built
        // from (exemption only removes edges).
        prop_assert!(skew.num_phases() <= naive.num_phases());
    }
}
