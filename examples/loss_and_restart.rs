//! Failure injection: run the MESQ/SR shuffle over an Unreliable Datagram
//! fabric that actually loses packets, observe the counting-based
//! termination detect the loss (§4.4.2), and restart the query — the
//! paper's recovery strategy ("we treat this as a network error and
//! restart the query").
//!
//! ```sh
//! cargo run --release --example loss_and_restart
//! ```

use std::sync::Arc;

use rshuffle_repro::engine::{drive_to_sink, Generator};
use rshuffle_repro::rshuffle::{
    CostModel, Exchange, ExchangeConfig, ReceiveOperator, ShuffleAlgorithm, ShuffleError,
    ShuffleOperator,
};
use rshuffle_repro::simnet::{Cluster, DeviceProfile};
use rshuffle_repro::verbs::{FaultConfig, VerbsRuntime};

/// One attempt: returns Ok(bytes shuffled) or the first worker error.
fn attempt(drop_probability: f64, seed: u64) -> Result<u64, ShuffleError> {
    let nodes = 3;
    let threads = 2;
    let cluster = Cluster::new(nodes, DeviceProfile::edr());
    let runtime = VerbsRuntime::with_faults(
        cluster,
        FaultConfig {
            ud_drop_probability: drop_probability,
            ud_reorder_probability: 0.2,
            seed,
            ..FaultConfig::default()
        },
    );
    let config = ExchangeConfig::repartition(ShuffleAlgorithm::MESQ_SR, nodes, threads);
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());

    let mut fragment_stats = Vec::new();
    for node in 0..nodes {
        let source = Arc::new(Generator::new(60_000, threads, node as u64));
        let shuffle = Arc::new(ShuffleOperator::with_lanes(
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            threads,
            cost.clone(),
        ));
        fragment_stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("s{node}"),
            shuffle,
            threads,
            |_, _| {},
        ));
        let receive = Arc::new(ReceiveOperator::with_lanes(
            exchange.recv[node].clone(),
            16,
            2048,
            threads,
            cost.clone(),
        ));
        fragment_stats.push(drive_to_sink(
            runtime.cluster(),
            node,
            &format!("r{node}"),
            receive,
            threads,
            |_, _| {},
        ));
    }
    runtime.cluster().run();

    let net = runtime.stats();
    println!(
        "  attempt: {} datagrams lost in the network, {} reordered",
        net.ud_dropped_in_network, net.ud_reordered
    );
    for stats in &fragment_stats {
        let stats = stats.lock();
        if let Some(e) = stats.errors.first() {
            return Err(e.clone());
        }
    }
    Ok((0..nodes).map(|n| exchange.bytes_received(n)).sum())
}

fn main() {
    println!("run 1: lossy network (0.5% datagram loss)");
    let mut seed = 1u64;
    let mut attempts = 0;
    loop {
        attempts += 1;
        // First attempt over a lossy fabric; retries get a healthy one
        // (the loss events of §4.4.2 are rare bit errors, not congestion).
        let p = if attempts == 1 { 0.005 } else { 0.0 };
        match attempt(p, seed) {
            Ok(bytes) => {
                println!(
                    "query finished after {attempts} attempt(s): {:.1} MiB shuffled",
                    bytes as f64 / (1 << 20) as f64
                );
                assert!(attempts > 1, "the lossy first attempt should have failed");
                break;
            }
            Err(e) => {
                println!("  query failed ({e}); restarting");
                seed += 1;
            }
        }
        assert!(attempts < 5, "restart loop must converge");
    }
}
