//! TPC-H Q4 end to end: generate a distributed database, run the
//! distributed plan with the MESQ/SR shuffle and with MPI, compare both
//! against the "local data" (co-partitioned) plan and validate every
//! result against a host-side reference execution — a miniature of
//! Figure 14(a).
//!
//! ```sh
//! cargo run --release --example tpch_q4
//! ```

use rshuffle_repro::rshuffle::ShuffleAlgorithm;
use rshuffle_repro::simnet::DeviceProfile;
use rshuffle_repro::tpch::queries::reference;
use rshuffle_repro::tpch::{run_query, Dataset, GenConfig, Placement, QueryId, QueryTransport};

fn main() {
    let nodes = 4;
    let threads = 4;
    let scale = 0.05;

    let random = Dataset::generate(&GenConfig {
        scale,
        nodes,
        placement: Placement::Random,
        seed: 42,
    });
    let copart = Dataset::generate(&GenConfig {
        scale,
        nodes,
        placement: Placement::CoPartitioned,
        seed: 42,
    });
    println!(
        "TPC-H SF {scale}: {} lineitems, {} orders over {nodes} nodes",
        random.lineitem_rows(),
        random.orders_rows()
    );

    let expected = reference(&random, QueryId::Q4);
    for (label, dataset, transport) in [
        (
            "MESQ/SR ",
            &random,
            QueryTransport::Rdma(ShuffleAlgorithm::MESQ_SR),
        ),
        ("MPI     ", &random, QueryTransport::Mpi),
        ("local   ", &copart, QueryTransport::LocalData),
    ] {
        let r = run_query(
            DeviceProfile::edr(),
            dataset,
            QueryId::Q4,
            transport,
            threads,
        );
        let check = if r.groups == reference(dataset, QueryId::Q4) {
            "✓ matches reference"
        } else {
            "✗ WRONG RESULT"
        };
        println!(
            "{label} response {:>12}   {check}",
            format!("{}", r.response_time)
        );
    }
    println!("\nreference result (priority → order count):");
    let mut rows: Vec<_> = expected.into_iter().collect();
    rows.sort_unstable();
    for (prio, count) in rows {
        println!(
            "  {} → {count}",
            ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"][prio as usize]
        );
    }
}
