//! Broadcast join: replicate a small dimension table to every node with the
//! broadcast transmission pattern (Figure 3c), then join the local fact
//! fragments against it — the classic use of the broadcast shuffle in
//! parallel database systems.
//!
//! ```sh
//! cargo run --release --example broadcast_join
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rshuffle_repro::engine::{drive_to_sink, HashJoin, MemScan, Table};
use rshuffle_repro::rshuffle::{
    CostModel, Exchange, ExchangeConfig, ReceiveOperator, ShuffleAlgorithm, ShuffleOperator,
};
use rshuffle_repro::simnet::{Cluster, DeviceProfile, SimDuration};
use rshuffle_repro::verbs::VerbsRuntime;

fn main() {
    let nodes = 4;
    let threads = 2;
    let dim_rows_per_node = 5_000u64; // Each node owns a slice of the dimension.
    let fact_rows_per_node = 200_000u64;

    let cluster = Cluster::new(nodes, DeviceProfile::edr());
    let runtime = VerbsRuntime::new(cluster);
    let config = ExchangeConfig::broadcast(ShuffleAlgorithm::MESQ_SR, nodes, threads);
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());
    let matches = Arc::new(AtomicU64::new(0));

    for node in 0..nodes {
        // Dimension fragment: keys [node*D, (node+1)*D), value = key * 3.
        let mut dim = Table::builder(16);
        for i in 0..dim_rows_per_node {
            let key = node as u64 * dim_rows_per_node + i;
            let mut row = [0u8; 16];
            row[0..8].copy_from_slice(&key.to_le_bytes());
            row[8..16].copy_from_slice(&(key * 3).to_le_bytes());
            dim.push(&row);
        }
        // Broadcast the local dimension slice to every other node.
        let dim_scan = Arc::new(MemScan::new(dim.build(), threads, 8e9));
        let shuffle = Arc::new(ShuffleOperator::with_lanes(
            dim_scan,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            threads,
            cost.clone(),
        ));
        drive_to_sink(
            runtime.cluster(),
            node,
            &format!("bcast-{node}"),
            shuffle,
            threads,
            |_, _| {},
        );

        // Fact fragment: keys drawn from OTHER nodes' dimension slices, so
        // matches require the broadcast to have worked.
        let mut fact = Table::builder(16);
        for i in 0..fact_rows_per_node {
            let key = (i * 7 + node as u64) % (dim_rows_per_node * nodes as u64);
            let mut row = [0u8; 16];
            row[0..8].copy_from_slice(&key.to_le_bytes());
            row[8..16].copy_from_slice(&i.to_le_bytes());
            fact.push(&row);
        }
        let fact_scan = Arc::new(MemScan::new(fact.build(), threads, 8e9));

        // Build side: the received (remote) dimension slices.
        let received_dim = Arc::new(ReceiveOperator::with_lanes(
            exchange.recv[node].clone(),
            16,
            2048,
            threads,
            cost.clone(),
        ));
        let join = Arc::new(HashJoin::new(
            runtime.kernel(),
            received_dim,
            fact_scan,
            |d| u64::from_le_bytes(d[0..8].try_into().unwrap()),
            |f| u64::from_le_bytes(f[0..8].try_into().unwrap()),
            |d, f, out| {
                out.extend_from_slice(&f[0..8]);
                out.extend_from_slice(&d[8..16]); // dimension payload
            },
            16,
            threads,
            SimDuration::from_nanos(4),
        ));
        let m = matches.clone();
        drive_to_sink(
            runtime.cluster(),
            node,
            &format!("join-{node}"),
            join,
            threads,
            move |_, batch| {
                // Verify the dimension payload arrived intact: value = key*3.
                for row in batch.iter() {
                    let key = u64::from_le_bytes(row[0..8].try_into().unwrap());
                    let val = u64::from_le_bytes(row[8..16].try_into().unwrap());
                    assert_eq!(val, key * 3, "broadcast corrupted the dimension");
                }
                m.fetch_add(batch.rows() as u64, Ordering::Relaxed);
            },
        );
    }

    runtime.cluster().run();
    let total = matches.load(Ordering::Relaxed);
    // Fact keys referencing the LOCAL dimension slice do not match (the
    // broadcast excludes self per Figure 3c), so expect roughly
    // (nodes-1)/nodes of all fact rows to join.
    println!(
        "broadcast join produced {total} matches across {nodes} nodes in {}",
        runtime.kernel().now()
    );
    let expected_min =
        fact_rows_per_node * nodes as u64 * (nodes as u64 - 1) / nodes as u64 * 9 / 10;
    assert!(
        total >= expected_min,
        "too few matches: {total} < {expected_min}"
    );
    println!("dimension payloads verified on every matched row");
}
