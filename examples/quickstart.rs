//! Quickstart: repartition a synthetic table across a simulated 4-node EDR
//! cluster with the paper's winning MESQ/SR design and print the receive
//! throughput.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use rshuffle_repro::engine::{drive_to_sink, Generator};
use rshuffle_repro::rshuffle::{
    CostModel, Exchange, ExchangeConfig, ReceiveOperator, ShuffleAlgorithm, ShuffleOperator,
};
use rshuffle_repro::simnet::{Cluster, DeviceProfile};
use rshuffle_repro::verbs::VerbsRuntime;

fn main() {
    let nodes = 4;
    let threads = 4;
    let rows_per_thread = 200_000; // 16-byte rows.

    // 1. A simulated EDR InfiniBand cluster and its verbs runtime.
    let cluster = Cluster::new(nodes, DeviceProfile::edr());
    let runtime = VerbsRuntime::new(cluster);

    // 2. Build and wire the shuffle endpoints: MESQ/SR = one UD queue pair
    //    per worker thread, RDMA Send/Receive, credit flow control.
    let config = ExchangeConfig::repartition(ShuffleAlgorithm::MESQ_SR, nodes, threads);
    let exchange = Exchange::build(&runtime, &config).expect("exchange builds");
    let cost = CostModel::from_profile(runtime.profile());

    // 3. On every node: a generator feeding the SHUFFLE operator, and the
    //    RECEIVE operator draining inbound buffers.
    for node in 0..nodes {
        let source = Arc::new(Generator::new(rows_per_thread, threads, node as u64));
        let shuffle = Arc::new(ShuffleOperator::with_lanes(
            source,
            exchange.send[node].clone(),
            exchange.groups[node].clone(),
            threads,
            cost.clone(),
        ));
        drive_to_sink(
            runtime.cluster(),
            node,
            &format!("shuffle-{node}"),
            shuffle,
            threads,
            |_, _| {},
        );
        let receive = Arc::new(ReceiveOperator::with_lanes(
            exchange.recv[node].clone(),
            16,
            2048,
            threads,
            cost.clone(),
        ));
        drive_to_sink(
            runtime.cluster(),
            node,
            &format!("receive-{node}"),
            receive,
            threads,
            |_, _| {},
        );
    }

    // 4. Run the virtual-time simulation to completion.
    runtime.cluster().run();

    let elapsed = runtime.kernel().now();
    let mut total: u64 = 0;
    for node in 0..nodes {
        total += exchange.bytes_received(node);
    }
    println!(
        "shuffled {:.1} MiB across {nodes} nodes in {elapsed} of virtual time",
        total as f64 / (1 << 20) as f64
    );
    println!(
        "receive throughput per node: {:.2} GiB/s",
        total as f64 / nodes as f64 / elapsed.as_secs_f64() / (1u64 << 30) as f64
    );
}
