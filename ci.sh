#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from the repo root. Pass --offline via CARGO_FLAGS if needed.
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=${CARGO_FLAGS:-}

cargo build --release $CARGO_FLAGS
cargo test -q $CARGO_FLAGS
cargo clippy --workspace $CARGO_FLAGS -- -D warnings

# Feature matrix: the audit feature auto-installs the protocol invariant
# auditor on every Exchange::build; the whole suite (chaos, conformance,
# determinism) must stay green — and byte-identical — with it on.
cargo test -q --features audit $CARGO_FLAGS
cargo clippy --workspace --all-targets --features audit $CARGO_FLAGS -- -D warnings

# Mutation smoke: each compile-time saboteur breaks one protocol step and
# must be caught by the auditor as a *named* violation, never a hang.
cargo test -q --features saboteur --test mutation $CARGO_FLAGS
cargo clippy --workspace --all-targets --features saboteur $CARGO_FLAGS -- -D warnings

# Panic-free data path: endpoint hot paths and the recovery/restart
# orchestrators propagate typed ShuffleErrors; unwrap/expect would turn a
# poisoned ring slot or a failed reconnect into a process abort.
if grep -rnE '\.(unwrap|expect)\(' crates/core/src/endpoint/ crates/engine/src/ crates/mux/src/ \
  crates/core/src/phase.rs crates/core/src/advisor.rs; then
  echo "ERROR: unwrap()/expect() on an engine, endpoint or mux data path (see above)" >&2
  exit 1
fi

# Allocation-free hot paths: the endpoints run on pooled registered
# buffers, reusable CQ scratch and cached address handles, so fresh
# heap allocations (`to_vec()`, `Vec::new(`) in the endpoint sources
# are almost always a hot-path regression. Deliberate setup-time sites
# carry an `alloc-ok: <reason>` comment on the same line.
if grep -rn 'to_vec()\|Vec::new(' crates/core/src/endpoint/ | grep -v 'alloc-ok'; then
  echo "ERROR: unpooled allocation in an endpoint source (see above);" >&2
  echo "       pool it, or annotate a genuine setup-time site with 'alloc-ok: <reason>'" >&2
  exit 1
fi

# Chaos smoke: a composite fault plan (link flap + straggler + QP failure
# + UD loss burst) plus a partial-recovery plan (whole-node QP-failure
# window) across all six algorithms; fails unless every query recovers
# with exactly-once row delivery, and the partial-recovery plan is
# contained without a full restart.
cargo run -q --release -p rshuffle-bench --bin chaos $CARGO_FLAGS -- --smoke

# Scheduler unit tests (the umbrella suite only runs integration tests).
cargo test -q -p rshuffle-sched --lib $CARGO_FLAGS

# Multiplexer unit tests: slot leasing, LRU sharing, credit accounting.
cargo test -q -p rshuffle-mux --lib $CARGO_FLAGS

# Concurrency smoke: 1 and 2 co-running queries per algorithm through the
# admission scheduler; fails unless queries genuinely overlap in virtual
# time and the registered-memory budget holds on every node.
cargo run -q --release -p rshuffle-bench --bin concurrency $CARGO_FLAGS -- --smoke

# Perf-trajectory gate: regenerate the deterministic smoke session and
# compare against the committed baseline. Any gated metric (latency up,
# throughput down) past the tolerance fails the build.
PERF_CAND=$(mktemp /tmp/rshuffle-bench-cand.XXXXXX.json)
trap 'rm -f "$PERF_CAND"' EXIT
cargo run -q --release -p rshuffle-bench --bin perfdiff $CARGO_FLAGS -- \
  --against BENCH_0008.json --tolerance-pct 10 --save-candidate "$PERF_CAND"

# Gate self-check: an injected 2x latency slowdown must be caught; if it
# passes, the gate itself is broken.
if cargo run -q --release -p rshuffle-bench --bin perfdiff $CARGO_FLAGS -- \
  --against BENCH_0008.json --tolerance-pct 10 \
  --candidate "$PERF_CAND" --scale-latency 2 >/dev/null 2>&1; then
  echo "ERROR: perfdiff failed to catch an injected 2x latency regression" >&2
  exit 1
fi

# Scale-out smoke: the 32-node crossover-pair sweep over the fat-tree
# fabric, with and without the QP cap, gated against the committed
# baseline on its deterministic virtual-time metrics (qp_count and
# lease waits ride along as informational rows).
SCALE_CAND=$(mktemp /tmp/rshuffle-scale-cand.XXXXXX.json)
trap 'rm -f "$PERF_CAND" "$SCALE_CAND"' EXIT
cargo run -q --release -p rshuffle-bench --bin scale $CARGO_FLAGS -- \
  --smoke --emit "$SCALE_CAND" >/dev/null
cargo run -q --release -p rshuffle-bench --bin perfdiff $CARGO_FLAGS -- \
  --against BENCH_SCALE_0010.json --candidate "$SCALE_CAND" --tolerance-pct 10

# Adaptive smoke: the phased-vs-unphased sweep (N = 128/256 under Zipf
# skew on the congested fat tree — phased MESQ/SR must stay strictly
# faster) and the advisor-vs-oracle matrix (picks within the acceptance
# band on >= 90% of rows). The binary enforces both gates itself;
# perfdiff then pins the actual numbers against the committed baseline.
ADAPT_CAND=$(mktemp /tmp/rshuffle-adaptive-cand.XXXXXX.json)
trap 'rm -f "$PERF_CAND" "$SCALE_CAND" "$ADAPT_CAND"' EXIT
cargo run -q --release -p rshuffle-bench --bin adaptive $CARGO_FLAGS -- \
  --smoke --emit "$ADAPT_CAND" >/dev/null
cargo run -q --release -p rshuffle-bench --bin perfdiff $CARGO_FLAGS -- \
  --against BENCH_0010.json --candidate "$ADAPT_CAND" --tolerance-pct 10

# Adaptive gate self-check: a 2x inflation of the lower-is-better
# advisor ratios must be caught, or the gate is dead weight.
if cargo run -q --release -p rshuffle-bench --bin perfdiff $CARGO_FLAGS -- \
  --against BENCH_0010.json --tolerance-pct 10 \
  --candidate "$ADAPT_CAND" --scale-latency 2 >/dev/null 2>&1; then
  echo "ERROR: perfdiff failed to catch an injected 2x adaptive regression" >&2
  exit 1
fi

# Documentation gate: rshuffle-sched is #![warn(missing_docs)]; deny all
# rustdoc warnings workspace-wide so the public surface stays documented.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q $CARGO_FLAGS
