#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lint-clean clippy.
# Run from the repo root. Pass --offline via CARGO_FLAGS if needed.
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=${CARGO_FLAGS:-}

cargo build --release $CARGO_FLAGS
cargo test -q $CARGO_FLAGS
cargo clippy --workspace $CARGO_FLAGS -- -D warnings

# Chaos smoke: one composite fault plan (link flap + straggler + QP failure
# + UD loss burst) across all six algorithms; fails unless every query
# recovers with exactly-once row delivery.
cargo run -q --release -p rshuffle-bench --bin chaos $CARGO_FLAGS -- --smoke
