//! Umbrella crate re-exporting the whole reproduction.
pub use rshuffle;
pub use rshuffle_audit as audit;
pub use rshuffle_baselines as baselines;
pub use rshuffle_engine as engine;
pub use rshuffle_mux as mux;
pub use rshuffle_sched as sched;
pub use rshuffle_simnet as simnet;
pub use rshuffle_tpch as tpch;
pub use rshuffle_verbs as verbs;
